//! Transition (gross-delay) fault grading of a test sequence.
//!
//! The paper argues that the functional application of structural
//! patterns "may also be used for delay fault tests, since it basically
//! checks not only the structure of the components but also their timing
//! relations (2–8)". This module makes the claim measurable: it grades an
//! *ordered* pattern sequence against the transition fault model —
//! slow-to-rise / slow-to-fall on every net — using the standard
//! launch-on-capture interpretation:
//!
//! * pattern `i` must set the fault net to the initial value (1 for
//!   slow-to-fall, 0 for slow-to-rise);
//! * pattern `i+1` must be a *stuck-at* test for the corresponding
//!   stuck value (a slow-to-rise net behaves like stuck-at-0 on the
//!   launch edge).
//!
//! Because scan shifting destroys pattern-to-pattern ordering, classical
//! full scan cannot apply such pairs without enhanced (launch-off-shift)
//! hardware — the functional bus approach gets them for free, which is
//! exactly the paper's point.

use tta_netlist::{NetId, Netlist};

use crate::fault::{Fault, FaultSite};
use crate::faultsim::FaultSimulator;
use crate::pattern::{Pattern, PatternBatch, TestSet};

/// Direction of a transition fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transition {
    /// Slow to rise: the 0→1 edge does not arrive in time.
    SlowToRise,
    /// Slow to fall: the 1→0 edge does not arrive in time.
    SlowToFall,
}

/// A transition fault on one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransitionFault {
    /// The affected net.
    pub net: NetId,
    /// The slow edge.
    pub transition: Transition,
}

impl TransitionFault {
    /// The stuck-at fault this transition behaves as on the launch cycle.
    pub fn as_stuck_at(self) -> Fault {
        Fault {
            site: FaultSite::Net(self.net),
            // Slow-to-rise: the net is still 0 when captured.
            stuck: self.transition == Transition::SlowToFall,
        }
    }

    /// Initial value the preceding pattern must establish.
    pub fn initial_value(self) -> bool {
        self.transition == Transition::SlowToFall
    }
}

/// Result of grading a sequence against the transition fault universe.
#[derive(Debug, Clone)]
pub struct TransitionCoverage {
    /// Every graded fault.
    pub faults: Vec<TransitionFault>,
    /// Detection flag per fault.
    pub detected: Vec<bool>,
}

impl TransitionCoverage {
    /// Fraction of transition faults detected by the sequence.
    pub fn coverage(&self) -> f64 {
        if self.faults.is_empty() {
            return 0.0;
        }
        self.detected.iter().filter(|d| **d).count() as f64 / self.faults.len() as f64
    }

    /// Number of detected faults.
    pub fn detected_count(&self) -> usize {
        self.detected.iter().filter(|d| **d).count()
    }
}

/// Enumerates transition faults on every net of `nl`.
pub fn transition_universe(nl: &Netlist) -> Vec<TransitionFault> {
    (0..nl.net_count())
        .flat_map(|i| {
            let net = NetId::from_index(i);
            [
                TransitionFault {
                    net,
                    transition: Transition::SlowToRise,
                },
                TransitionFault {
                    net,
                    transition: Transition::SlowToFall,
                },
            ]
        })
        .collect()
}

/// Grades the ordered `test_set` against the transition universe of the
/// simulator's netlist.
///
/// A fault counts as detected when some *consecutive* pair `(i, i+1)`
/// initialises the net (pattern `i`) and detects the equivalent stuck-at
/// fault (pattern `i+1`).
pub fn grade_sequence(fs: &mut FaultSimulator, test_set: &TestSet) -> TransitionCoverage {
    let faults = transition_universe(fs.netlist());
    let patterns = test_set.patterns();
    let mut detected = vec![false; faults.len()];
    if patterns.len() < 2 {
        return TransitionCoverage { faults, detected };
    }

    // Net values for every pattern (packed in batches of 64).
    let n_nets = fs.netlist().net_count();
    let mut values: Vec<Vec<u64>> = Vec::with_capacity(patterns.len().div_ceil(64));
    for chunk in patterns.chunks(64) {
        let refs: Vec<&Pattern> = chunk.iter().collect();
        let batch = PatternBatch::pack(fs.view(), &refs);
        values.push(fs.good_values(&batch));
    }
    let value_of = |pattern: usize, net: usize| -> bool {
        values[pattern / 64][net] >> (pattern % 64) & 1 == 1
    };
    let _ = n_nets;

    // Stuck-at detection masks per pattern, batched.
    for (fi, fault) in faults.iter().enumerate() {
        let sa = fault.as_stuck_at();
        'pairs: for (chunk_idx, chunk) in patterns.chunks(64).enumerate() {
            let refs: Vec<&Pattern> = chunk.iter().collect();
            let batch = PatternBatch::pack(fs.view(), &refs);
            let good = &values[chunk_idx];
            let mask = fs.detect_mask(good, &batch, sa);
            if mask == 0 {
                continue;
            }
            for k in 0..chunk.len() {
                if mask >> k & 1 == 0 {
                    continue;
                }
                let global = chunk_idx * 64 + k;
                if global == 0 {
                    continue; // no predecessor to launch from
                }
                let init = value_of(global - 1, fault.net.index());
                if init == fault.initial_value() {
                    detected[fi] = true;
                    break 'pairs;
                }
            }
        }
    }
    TransitionCoverage { faults, detected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpg::{Atpg, AtpgConfig};
    use tta_netlist::components;
    use tta_netlist::NetlistBuilder;

    #[test]
    fn universe_is_two_per_net() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish();
        assert_eq!(transition_universe(&nl).len(), 2 * nl.net_count());
    }

    #[test]
    fn handcrafted_pair_detects_transition() {
        // Buffer circuit: a -> y. Slow-to-rise on `a` needs (0, then 1).
        let mut b = NetlistBuilder::new("buf");
        let a = b.input("a");
        let y = b.buf(a);
        b.output("y", y);
        let nl = b.finish();
        let anet = nl.find_net("a").unwrap();
        let mut fs = FaultSimulator::new(nl);
        let mut ts = TestSet::new();
        ts.push(Pattern::new(vec![false]));
        ts.push(Pattern::new(vec![true]));
        let cov = grade_sequence(&mut fs, &ts);
        let idx = cov
            .faults
            .iter()
            .position(|f| f.net == anet && f.transition == Transition::SlowToRise)
            .unwrap();
        assert!(cov.detected[idx], "0->1 pair must catch slow-to-rise");
        // Slow-to-fall needs the opposite order, which this set lacks.
        let idx_f = cov
            .faults
            .iter()
            .position(|f| f.net == anet && f.transition == Transition::SlowToFall)
            .unwrap();
        assert!(!cov.detected[idx_f]);
    }

    #[test]
    fn stuck_at_sets_give_substantial_transition_coverage() {
        // The paper's claim: the functional stuck-at sequence doubles as
        // a useful delay test. Grade the compacted ALU set.
        let alu = components::alu(4);
        let result = Atpg::new(AtpgConfig::default()).run(&alu.netlist);
        let mut fs = FaultSimulator::new(alu.netlist.clone());
        let cov = grade_sequence(&mut fs, &result.test_set);
        assert!(
            cov.coverage() > 0.35,
            "transition coverage {:.2} unexpectedly low",
            cov.coverage()
        );
        // And strictly less than stuck-at coverage: pairs are harder.
        assert!(cov.coverage() < result.fault_coverage());
    }

    #[test]
    fn single_pattern_detects_nothing() {
        let alu = components::alu(4);
        let mut fs = FaultSimulator::new(alu.netlist.clone());
        let mut ts = TestSet::new();
        ts.push(Pattern::new(vec![false; fs.view().inputs().len()]));
        let cov = grade_sequence(&mut fs, &ts);
        assert_eq!(cov.detected_count(), 0);
    }
}
