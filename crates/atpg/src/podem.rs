//! PODEM (Path-Oriented DEcision Making) deterministic test generation.
//!
//! Classic implementation over the 5-valued D-calculus: implication by
//! forward simulation, objective selection (activate, then propagate via
//! the D-frontier), backtrace to an unassigned input, and chronological
//! backtracking with a configurable limit.

use tta_netlist::netlist::NetDriver;
use tta_netlist::{GateId, GateKind, NetId, Netlist};

use crate::fault::{Fault, FaultSite};
use crate::v5::{V3, V5};
use crate::view::CombView;

/// Outcome of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test cube over the view inputs (may contain X positions).
    Test(Vec<V3>),
    /// The search space was exhausted: the fault is untestable
    /// (combinationally redundant).
    Untestable,
    /// The backtrack limit was hit before a verdict.
    Aborted,
}

/// PODEM engine bound to one netlist/view.
#[derive(Debug)]
pub struct Podem<'a> {
    nl: &'a Netlist,
    view: &'a CombView,
    /// Map net -> view input index (usize::MAX when not an input).
    input_of_net: Vec<usize>,
    /// Per-net logic depth, the controllability proxy for backtrace.
    depth: Vec<u32>,
    /// Per-net minimum distance to an observe point (usize::MAX if none).
    obs_dist: Vec<u32>,
    backtrack_limit: u32,
}

impl<'a> Podem<'a> {
    /// Creates an engine; `backtrack_limit` bounds the search per fault.
    pub fn new(nl: &'a Netlist, view: &'a CombView, backtrack_limit: u32) -> Self {
        let mut input_of_net = vec![usize::MAX; nl.net_count()];
        for (i, net) in view.inputs().iter().enumerate() {
            input_of_net[net.index()] = i;
        }
        let depth = tta_netlist::timing::logic_depth(nl);
        // Reverse BFS from observe points through gate edges.
        let mut obs_dist = vec![u32::MAX; nl.net_count()];
        let mut queue: Vec<NetId> = Vec::new();
        for net in view.observes() {
            obs_dist[net.index()] = 0;
            queue.push(*net);
        }
        let mut head = 0;
        while head < queue.len() {
            let net = queue[head];
            head += 1;
            let d = obs_dist[net.index()];
            if let NetDriver::Gate(gid) = nl.net(net).driver() {
                for inp in nl.gate(gid).inputs() {
                    if obs_dist[inp.index()] == u32::MAX {
                        obs_dist[inp.index()] = d + 1;
                        queue.push(*inp);
                    }
                }
            }
        }
        Podem {
            nl,
            view,
            input_of_net,
            depth,
            obs_dist,
            backtrack_limit,
        }
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate(&self, fault: Fault) -> PodemOutcome {
        let mut assignment: Vec<V3> = vec![V3::X; self.view.inputs().len()];
        // Decision stack: (input index, second value tried?).
        let mut stack: Vec<(usize, bool)> = Vec::new();
        let mut backtracks = 0u32;

        loop {
            let values = self.imply(&assignment, fault);
            if self.detected(&values) {
                return PodemOutcome::Test(assignment);
            }
            let objective = self.objective(&values, fault);
            let decision = objective.and_then(|(net, val)| self.backtrace(net, val, &values));
            match decision {
                Some((input, val)) => {
                    assignment[input] = V3::from_bool(val);
                    stack.push((input, false));
                }
                None => {
                    // Conflict: chronological backtrack.
                    loop {
                        match stack.pop() {
                            Some((input, tried_both)) => {
                                if tried_both {
                                    assignment[input] = V3::X;
                                    continue;
                                }
                                backtracks += 1;
                                if backtracks > self.backtrack_limit {
                                    return PodemOutcome::Aborted;
                                }
                                assignment[input] = assignment[input].not();
                                stack.push((input, true));
                                break;
                            }
                            None => return PodemOutcome::Untestable,
                        }
                    }
                }
            }
        }
    }

    /// Forward 5-valued implication of the current assignment with the
    /// fault injected. Returns a value per net.
    ///
    /// Values are kept in the *classic* five-valued domain
    /// {0, 1, X, D, D̄}: a line whose good or faulty half is unknown is
    /// collapsed to X. The coarser algebra is monotone in the partial PI
    /// assignment, which is exactly what makes PODEM's conflict pruning
    /// (activation impossible / D-frontier empty) safe and the search
    /// complete.
    pub fn imply(&self, assignment: &[V3], fault: Fault) -> Vec<V5> {
        let mut values = vec![V5::X; self.nl.net_count()];
        // Sources.
        for (i, net) in self.nl.nets().iter().enumerate() {
            let v = match net.driver() {
                NetDriver::PrimaryInput(_) | NetDriver::DffQ(_) => {
                    let idx = self.input_of_net[i];
                    if idx == usize::MAX {
                        // Register output not exposed by this view: unknown.
                        V5::X
                    } else {
                        let g = assignment[idx];
                        V5 { good: g, faulty: g }
                    }
                }
                NetDriver::Const0 => V5::ZERO,
                NetDriver::Const1 => V5::ONE,
                NetDriver::Gate(_) | NetDriver::Floating => continue,
            };
            values[i] = self.inject(NetId::from_index(i), v, fault);
        }
        // Gates in topological order.
        let mut ins = [V5::X; 3];
        for &gid in self.nl.topo_order() {
            let gate = self.nl.gate(gid);
            for (k, inp) in gate.inputs().iter().enumerate() {
                ins[k] = values[inp.index()];
            }
            // A stuck pin corrupts only this gate's view of the input.
            if let FaultSite::GatePin(fg, pin) = fault.site {
                if fg == gid {
                    let orig = ins[pin as usize];
                    ins[pin as usize] = canon(V5 {
                        good: orig.good,
                        faulty: V3::from_bool(fault.stuck),
                    });
                }
            }
            let out = V5::eval_gate(gate.kind(), &ins[..gate.inputs().len()]);
            values[gate.output().index()] = self.inject(gate.output(), out, fault);
        }
        values
    }

    /// Applies a stem fault to a freshly computed net value, collapsing
    /// half-known values to X (classic 5-valued domain).
    fn inject(&self, net: NetId, v: V5, fault: Fault) -> V5 {
        let v = match fault.site {
            FaultSite::Net(fnet) if fnet == net => V5 {
                good: v.good,
                faulty: V3::from_bool(fault.stuck),
            },
            _ => v,
        };
        canon(v)
    }

    /// Has the fault effect reached an observe point?
    fn detected(&self, values: &[V5]) -> bool {
        self.view
            .observes()
            .iter()
            .any(|net| values[net.index()].is_fault_effect())
    }

    /// Picks the next objective `(net, value)`, or `None` on a conflict.
    fn objective(&self, values: &[V5], fault: Fault) -> Option<(NetId, V3)> {
        let fnet = fault.net(self.nl);
        let line = values[fnet.index()].good;
        // 1. Activation.
        if line == V3::X {
            return Some((fnet, V3::from_bool(!fault.stuck)));
        }
        if line == V3::from_bool(fault.stuck) {
            return None; // activation impossible under current assignment
        }
        // 2. Propagation: try D-frontier gates nearest-to-observe first;
        // a single blocked gate is not a conflict — only an exhausted
        // frontier is (the monotone-safe PODEM prune).
        let mut frontier = self.d_frontier(values, fault);
        frontier.sort_by_key(|&gid| self.obs_dist[self.nl.gate(gid).output().index()]);
        frontier
            .into_iter()
            .find_map(|gid| self.propagation_objective(gid, values))
    }

    /// All gates with a fault effect on an input and X on the output.
    fn d_frontier(&self, values: &[V5], fault: Fault) -> Vec<GateId> {
        let mut frontier = Vec::new();
        for &gid in self.nl.topo_order() {
            let gate = self.nl.gate(gid);
            let out = values[gate.output().index()];
            if out.good.is_binary() && out.faulty.is_binary() {
                continue; // fully determined; effect either passed or died
            }
            let mut has_effect = false;
            for (pin, inp) in gate.inputs().iter().enumerate() {
                let mut v = values[inp.index()];
                if let FaultSite::GatePin(fg, fpin) = fault.site {
                    if fg == gid && fpin as usize == pin {
                        v = V5 {
                            good: v.good,
                            faulty: V3::from_bool(fault.stuck),
                        };
                    }
                }
                if v.is_fault_effect() {
                    has_effect = true;
                    break;
                }
            }
            if has_effect {
                frontier.push(gid);
            }
        }
        frontier
    }

    /// Objective that pushes the fault effect through `gid`: set an
    /// X-valued side input to the gate's non-controlling value.
    fn propagation_objective(&self, gid: GateId, values: &[V5]) -> Option<(NetId, V3)> {
        let gate = self.nl.gate(gid);
        let kind = gate.kind();
        let side_x = |skip_effect: bool| -> Option<NetId> {
            gate.inputs()
                .iter()
                .find(|inp| {
                    let v = values[inp.index()];
                    let is_x = v.good == V3::X && v.faulty == V3::X;
                    is_x && (!skip_effect || !v.is_fault_effect())
                })
                .copied()
        };
        match kind {
            GateKind::And | GateKind::Nand => side_x(true).map(|n| (n, V3::One)),
            GateKind::Or | GateKind::Nor => side_x(true).map(|n| (n, V3::Zero)),
            GateKind::Xor | GateKind::Xnor => side_x(true).map(|n| (n, V3::Zero)),
            GateKind::Buf | GateKind::Not => None, // output follows input; no side objective
            GateKind::Mux2 => {
                let sel = values[gate.inputs()[0].index()];
                let a = gate.inputs()[1];
                let b = gate.inputs()[2];
                let sel_net = gate.inputs()[0];
                if sel.is_fault_effect() {
                    // Effect on select: data inputs must differ.
                    let va = values[a.index()];
                    let vb = values[b.index()];
                    if va.good == V3::X {
                        let target = if vb.good.is_binary() {
                            vb.good.not()
                        } else {
                            V3::One
                        };
                        return Some((a, target));
                    }
                    if vb.good == V3::X {
                        let target = if va.good.is_binary() {
                            va.good.not()
                        } else {
                            V3::One
                        };
                        return Some((b, target));
                    }
                    None
                } else if sel.good == V3::X {
                    // Select the input carrying the effect.
                    let va = values[a.index()];
                    Some((
                        sel_net,
                        if va.is_fault_effect() {
                            V3::Zero
                        } else {
                            V3::One
                        },
                    ))
                } else {
                    // Select known; effect must be on the selected leg
                    // already — nothing more to set here.
                    None
                }
            }
        }
    }

    /// Walks an objective back to an unassigned view input.
    fn backtrace(&self, mut net: NetId, mut val: V3, values: &[V5]) -> Option<(usize, bool)> {
        loop {
            debug_assert!(val.is_binary());
            let idx = self.input_of_net[net.index()];
            if idx != usize::MAX {
                if values[net.index()].good != V3::X {
                    return None; // already assigned: conflict in objective
                }
                return Some((idx, val == V3::One));
            }
            let gid = match self.nl.net(net).driver() {
                NetDriver::Gate(g) => g,
                // Constants or unexposed registers cannot be set.
                _ => return None,
            };
            let gate = self.nl.gate(gid);
            let kind = gate.kind();
            let x_inputs: Vec<NetId> = gate
                .inputs()
                .iter()
                .filter(|n| values[n.index()].good == V3::X)
                .copied()
                .collect();
            if x_inputs.is_empty() {
                return None;
            }
            // Choose the easiest (And=all-1 → hardest; any-0 → easiest):
            // depth is the controllability proxy.
            let easiest = *x_inputs
                .iter()
                .min_by_key(|n| self.depth[n.index()])
                .expect("non-empty");
            let hardest = *x_inputs
                .iter()
                .max_by_key(|n| self.depth[n.index()])
                .expect("non-empty");
            let (next, next_val) = match kind {
                GateKind::Buf => (x_inputs[0], val),
                GateKind::Not => (x_inputs[0], val.not()),
                GateKind::And => match val {
                    V3::One => (hardest, V3::One),
                    _ => (easiest, V3::Zero),
                },
                GateKind::Nand => match val {
                    V3::Zero => (hardest, V3::One),
                    _ => (easiest, V3::Zero),
                },
                GateKind::Or => match val {
                    V3::Zero => (hardest, V3::Zero),
                    _ => (easiest, V3::One),
                },
                GateKind::Nor => match val {
                    V3::One => (hardest, V3::Zero),
                    _ => (easiest, V3::One),
                },
                GateKind::Xor | GateKind::Xnor => {
                    let a = gate.inputs()[0];
                    let b = gate.inputs()[1];
                    let (known, unknown) = if values[a.index()].good == V3::X {
                        (values[b.index()].good, a)
                    } else {
                        (values[a.index()].good, b)
                    };
                    let target = if kind == GateKind::Xor {
                        val
                    } else {
                        val.not()
                    };
                    let v = if known.is_binary() {
                        target.xor(known)
                    } else {
                        target // both X: pick one side arbitrarily
                    };
                    (unknown, if v.is_binary() { v } else { V3::Zero })
                }
                GateKind::Mux2 => {
                    // Descend only through X lines: the select may carry a
                    // fault effect (D/D̄ — binary in the good half, but
                    // not a settable line), in which case any X data leg
                    // is still a valid decision point.
                    let sel_net = gate.inputs()[0];
                    if values[sel_net.index()].good == V3::X {
                        (sel_net, V3::Zero)
                    } else {
                        let leg = match values[sel_net.index()].good {
                            V3::Zero => gate.inputs()[1],
                            _ => gate.inputs()[2],
                        };
                        if values[leg.index()].good == V3::X {
                            (leg, val)
                        } else {
                            (x_inputs[0], val)
                        }
                    }
                }
            };
            if values[next.index()].good != V3::X {
                return None;
            }
            net = next;
            val = next_val;
        }
    }
}

/// Collapses a value with any unknown half to full X, staying in the
/// classic {0, 1, X, D, D̄} domain.
fn canon(v: V5) -> V5 {
    if v.good.is_binary() && v.faulty.is_binary() {
        v
    } else {
        V5::X
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use crate::faultsim::FaultSimulator;
    use crate::pattern::{Pattern, PatternBatch};
    use tta_netlist::NetlistBuilder;

    fn check_podem_pattern(nl: Netlist, fault: Fault) {
        let view = CombView::full_scan(&nl);
        let podem = Podem::new(&nl, &view, 10_000);
        let outcome = podem.generate(fault);
        let PodemOutcome::Test(cube) = outcome else {
            panic!("expected a test for {fault}, got {outcome:?}");
        };
        // X-fill with zeros and confirm via fault simulation.
        let bits: Vec<bool> = cube.iter().map(|v| *v == V3::One).collect();
        drop(podem);
        let mut fs = FaultSimulator::new(nl);
        let p = Pattern::new(bits);
        let batch = PatternBatch::pack(fs.view(), &[&p]);
        let good = fs.good_values(&batch);
        assert_eq!(fs.detect_mask(&good, &batch, fault), 1, "{fault}");
    }

    #[test]
    fn finds_test_for_and_output_sa0() {
        let mut b = NetlistBuilder::new("and");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let nl = b.finish();
        let ynet = nl.primary_outputs()[0].1;
        check_podem_pattern(nl, Fault::sa0(ynet));
    }

    #[test]
    fn finds_test_through_reconvergence() {
        // y = (a&b) ^ (a|c): reconvergent fanout on a.
        let mut b = NetlistBuilder::new("reconv");
        let a = b.input("a");
        let x = b.input("b");
        let c = b.input("c");
        let g1 = b.and2(a, x);
        let g2 = b.or2(a, c);
        let y = b.xor2(g1, g2);
        b.output("y", y);
        let nl = b.finish();
        let g1out = nl.gates()[0].output();
        check_podem_pattern(nl, Fault::sa1(g1out));
    }

    #[test]
    fn proves_redundant_fault_untestable() {
        // y = a | (a & b): the AND output sa0 is undetectable (absorption).
        let mut b = NetlistBuilder::new("redundant");
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.and2(a, c);
        let y = b.or2(a, g1);
        b.output("y", y);
        let nl = b.finish();
        let g1out = nl.gates()[0].output();
        let view = CombView::full_scan(&nl);
        let podem = Podem::new(&nl, &view, 10_000);
        assert_eq!(podem.generate(Fault::sa0(g1out)), PodemOutcome::Untestable);
    }

    #[test]
    fn finds_test_behind_register() {
        let mut b = NetlistBuilder::new("seq");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.and2(a, c);
        let q = b.dff("r", x);
        let y = b.not(q);
        b.output("y", y);
        let nl = b.finish();
        let xnet = nl.gates()[0].output();
        check_podem_pattern(nl, Fault::sa1(xnet));
    }

    #[test]
    fn finds_test_through_mux() {
        let mut b = NetlistBuilder::new("mux");
        let s = b.input("s");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.mux2(s, a, c);
        b.output("y", y);
        let nl = b.finish();
        let anet = nl.find_net("a").unwrap();
        check_podem_pattern(nl, Fault::sa0(anet));
    }

    #[test]
    fn pin_fault_on_branch_gets_test() {
        let mut b = NetlistBuilder::new("branch");
        let a = b.input("a");
        let x = b.input("b");
        let c = b.input("c");
        let g1 = b.and2(a, x);
        let g2 = b.or2(a, c);
        b.output("y0", g1);
        b.output("y1", g2);
        let nl = b.finish();
        let or_gate = nl
            .gates()
            .iter()
            .position(|g| g.kind() == GateKind::Or)
            .unwrap();
        let fault = Fault {
            site: FaultSite::GatePin(GateId::from_index(or_gate), 0),
            stuck: true,
        };
        check_podem_pattern(nl, fault);
    }
}
