//! PODEM (Path-Oriented DEcision Making) deterministic test generation.
//!
//! Classic implementation over the 5-valued D-calculus: implication by
//! forward simulation, objective selection (activate, then propagate via
//! the D-frontier), backtrace to an unassigned input, and chronological
//! backtracking with a configurable limit.
//!
//! Two standard accelerations keep hard faults cheap without changing
//! any Test/Untestable verdict:
//!
//! * **X-path pruning** — when the D-frontier is alive but no path of
//!   X-valued nets connects any frontier gate to an observe point, the
//!   fault effect can never reach an output under the current partial
//!   assignment (binary nets are monotone in PODEM), so the engine
//!   backtracks immediately instead of exhausting the doomed subtree.
//!   Pruned subtrees contain no tests, so the first test found — and
//!   therefore the generated cube — is identical to the unpruned search;
//!   only faults that previously hit the backtrack limit can now resolve.
//! * **Scratch reuse** — the per-net value array, frontier list and
//!   X-path visit marks live on the engine and are reused across
//!   decisions and faults; the inner loop performs no heap allocation.

use tta_netlist::netlist::NetDriver;
use tta_netlist::{GateId, GateKind, NetId, Netlist};

use crate::fault::{Fault, FaultSite};
use crate::v5::{V3, V5};
use crate::view::CombView;

/// Outcome of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test cube over the view inputs (may contain X positions).
    Test(Vec<V3>),
    /// The search space was exhausted: the fault is untestable
    /// (combinationally redundant).
    Untestable,
    /// The backtrack limit was hit before a verdict.
    Aborted,
}

/// PODEM engine bound to one netlist/view.
#[derive(Debug)]
pub struct Podem<'a> {
    nl: &'a Netlist,
    view: &'a CombView,
    /// Map net -> view input index (usize::MAX when not an input).
    input_of_net: Vec<usize>,
    /// Per-net logic depth, the controllability proxy for backtrace.
    depth: Vec<u32>,
    /// Per-net minimum distance to an observe point (usize::MAX if none).
    obs_dist: Vec<u32>,
    /// Per-net reader gates (for the X-path forward reachability walk).
    readers: Vec<Vec<GateId>>,
    /// Per-net observe-point flag of the view.
    is_observe: Vec<bool>,
    backtrack_limit: u32,
    // ---- scratch, reused across decisions and faults ----
    values: Vec<V5>,
    frontier: Vec<GateId>,
    xpath_mark: Vec<u64>,
    xpath_epoch: u64,
    xpath_stack: Vec<NetId>,
}

impl<'a> Podem<'a> {
    /// Creates an engine; `backtrack_limit` bounds the search per fault.
    pub fn new(nl: &'a Netlist, view: &'a CombView, backtrack_limit: u32) -> Self {
        let mut input_of_net = vec![usize::MAX; nl.net_count()];
        for (i, net) in view.inputs().iter().enumerate() {
            input_of_net[net.index()] = i;
        }
        let depth = tta_netlist::timing::logic_depth(nl);
        // Reverse BFS from observe points through gate edges.
        let mut obs_dist = vec![u32::MAX; nl.net_count()];
        let mut queue: Vec<NetId> = Vec::new();
        let mut is_observe = vec![false; nl.net_count()];
        for net in view.observes() {
            obs_dist[net.index()] = 0;
            is_observe[net.index()] = true;
            queue.push(*net);
        }
        let mut head = 0;
        while head < queue.len() {
            let net = queue[head];
            head += 1;
            let d = obs_dist[net.index()];
            if let NetDriver::Gate(gid) = nl.net(net).driver() {
                for inp in nl.gate(gid).inputs() {
                    if obs_dist[inp.index()] == u32::MAX {
                        obs_dist[inp.index()] = d + 1;
                        queue.push(*inp);
                    }
                }
            }
        }
        // Forward adjacency: the gates reading each net.
        let fanout = nl.fanout_table();
        let mut readers: Vec<Vec<GateId>> = vec![Vec::new(); nl.net_count()];
        for (ni, pins) in fanout.gate_pins.iter().enumerate() {
            for &(gid, _) in pins {
                if readers[ni].last() != Some(&gid) {
                    readers[ni].push(gid);
                }
            }
        }
        Podem {
            nl,
            view,
            input_of_net,
            depth,
            obs_dist,
            readers,
            is_observe,
            backtrack_limit,
            values: vec![V5::X; nl.net_count()],
            frontier: Vec::new(),
            xpath_mark: vec![0; nl.net_count()],
            xpath_epoch: 0,
            xpath_stack: Vec::new(),
        }
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate(&mut self, fault: Fault) -> PodemOutcome {
        let mut assignment: Vec<V3> = vec![V3::X; self.view.inputs().len()];
        // Decision stack: (input index, second value tried?).
        let mut stack: Vec<(usize, bool)> = Vec::new();
        let mut backtracks = 0u32;

        loop {
            self.imply(&assignment, fault);
            if self.detected() {
                return PodemOutcome::Test(assignment);
            }
            let objective = self.objective(fault);
            let decision = objective.and_then(|(net, val)| self.backtrace(net, val));
            match decision {
                Some((input, val)) => {
                    assignment[input] = V3::from_bool(val);
                    stack.push((input, false));
                }
                None => {
                    // Conflict: chronological backtrack.
                    loop {
                        match stack.pop() {
                            Some((input, tried_both)) => {
                                if tried_both {
                                    assignment[input] = V3::X;
                                    continue;
                                }
                                backtracks += 1;
                                if backtracks > self.backtrack_limit {
                                    return PodemOutcome::Aborted;
                                }
                                assignment[input] = assignment[input].not();
                                stack.push((input, true));
                                break;
                            }
                            None => return PodemOutcome::Untestable,
                        }
                    }
                }
            }
        }
    }

    /// Forward 5-valued implication of the current assignment with the
    /// fault injected. Fills (and returns a view of) the engine's per-net
    /// value scratch.
    ///
    /// Values are kept in the *classic* five-valued domain
    /// {0, 1, X, D, D̄}: a line whose good or faulty half is unknown is
    /// collapsed to X. The coarser algebra is monotone in the partial PI
    /// assignment, which is exactly what makes PODEM's conflict pruning
    /// (activation impossible / D-frontier empty / no X-path) safe and
    /// the search complete.
    pub fn imply(&mut self, assignment: &[V3], fault: Fault) -> &[V5] {
        self.values.fill(V5::X);
        self.frontier.clear();
        // Sources.
        for (i, net) in self.nl.nets().iter().enumerate() {
            let v = match net.driver() {
                NetDriver::PrimaryInput(_) | NetDriver::DffQ(_) => {
                    let idx = self.input_of_net[i];
                    if idx == usize::MAX {
                        // Register output not exposed by this view: unknown.
                        V5::X
                    } else {
                        let g = assignment[idx];
                        V5 { good: g, faulty: g }
                    }
                }
                NetDriver::Const0 => V5::ZERO,
                NetDriver::Const1 => V5::ONE,
                NetDriver::Gate(_) | NetDriver::Floating => continue,
            };
            self.values[i] = inject(NetId::from_index(i), v, fault);
        }
        // Gates in topological order. The D-frontier (fault effect on an
        // input, output not fully determined) falls out of the same pass:
        // every input's final value is known by the time its reader is
        // evaluated, so the check here matches a post-hoc scan exactly.
        let mut ins = [V5::X; 3];
        for &gid in self.nl.topo_order() {
            let gate = self.nl.gate(gid);
            for (k, inp) in gate.inputs().iter().enumerate() {
                ins[k] = self.values[inp.index()];
            }
            // A stuck pin corrupts only this gate's view of the input.
            if let FaultSite::GatePin(fg, pin) = fault.site {
                if fg == gid {
                    let orig = ins[pin as usize];
                    ins[pin as usize] = canon(V5 {
                        good: orig.good,
                        faulty: V3::from_bool(fault.stuck),
                    });
                }
            }
            let n_ins = gate.inputs().len();
            let out = V5::eval_gate(gate.kind(), &ins[..n_ins]);
            let out = inject(gate.output(), out, fault);
            self.values[gate.output().index()] = out;
            if !(out.good.is_binary() && out.faulty.is_binary())
                && ins[..n_ins].iter().any(|v| v.is_fault_effect())
            {
                self.frontier.push(gid);
            }
        }
        &self.values
    }

    /// Has the fault effect reached an observe point?
    fn detected(&self) -> bool {
        self.view
            .observes()
            .iter()
            .any(|net| self.values[net.index()].is_fault_effect())
    }

    /// Picks the next objective `(net, value)`, or `None` on a conflict.
    fn objective(&mut self, fault: Fault) -> Option<(NetId, V3)> {
        let fnet = fault.net(self.nl);
        let line = self.values[fnet.index()].good;
        // 1. Activation.
        if line == V3::X {
            return Some((fnet, V3::from_bool(!fault.stuck)));
        }
        if line == V3::from_bool(fault.stuck) {
            return None; // activation impossible under current assignment
        }
        // 2. Propagation: try D-frontier gates nearest-to-observe first;
        // a single blocked gate is not a conflict — only an exhausted
        // frontier (or a frontier with no X-path to an observe point) is.
        // The frontier itself was collected during `imply`.
        if self.frontier.is_empty() {
            return None;
        }
        if !self.x_path_exists() {
            return None; // effect is boxed in: every route is binary
        }
        let Podem {
            frontier,
            obs_dist,
            nl,
            ..
        } = self;
        frontier.sort_by_key(|&gid| obs_dist[nl.gate(gid).output().index()]);
        for i in 0..self.frontier.len() {
            let gid = self.frontier[i];
            if let Some(obj) = self.propagation_objective(gid) {
                return Some(obj);
            }
        }
        None
    }

    /// Is there a path of X-valued nets from any D-frontier gate output
    /// to an observe point? If not, the effect can never be observed
    /// under the current assignment: binary nets stay binary as more
    /// inputs are assigned (the 5-valued algebra is monotone), and a net
    /// can only come to carry D/D̄ later if it is X now.
    fn x_path_exists(&mut self) -> bool {
        self.xpath_epoch += 1;
        let epoch = self.xpath_epoch;
        self.xpath_stack.clear();
        for i in 0..self.frontier.len() {
            let out = self.nl.gate(self.frontier[i]).output();
            if self.values[out.index()] == V5::X && self.xpath_mark[out.index()] != epoch {
                self.xpath_mark[out.index()] = epoch;
                self.xpath_stack.push(out);
            }
        }
        while let Some(net) = self.xpath_stack.pop() {
            if self.is_observe[net.index()] {
                return true;
            }
            for k in 0..self.readers[net.index()].len() {
                let gid = self.readers[net.index()][k];
                let out = self.nl.gate(gid).output();
                if self.values[out.index()] == V5::X && self.xpath_mark[out.index()] != epoch {
                    self.xpath_mark[out.index()] = epoch;
                    self.xpath_stack.push(out);
                }
            }
        }
        false
    }

    /// Objective that pushes the fault effect through `gid`: set an
    /// X-valued side input to the gate's non-controlling value.
    fn propagation_objective(&self, gid: GateId) -> Option<(NetId, V3)> {
        let values = &self.values;
        let gate = self.nl.gate(gid);
        let kind = gate.kind();
        let side_x = |skip_effect: bool| -> Option<NetId> {
            gate.inputs()
                .iter()
                .find(|inp| {
                    let v = values[inp.index()];
                    let is_x = v.good == V3::X && v.faulty == V3::X;
                    is_x && (!skip_effect || !v.is_fault_effect())
                })
                .copied()
        };
        match kind {
            GateKind::And | GateKind::Nand => side_x(true).map(|n| (n, V3::One)),
            GateKind::Or | GateKind::Nor => side_x(true).map(|n| (n, V3::Zero)),
            GateKind::Xor | GateKind::Xnor => side_x(true).map(|n| (n, V3::Zero)),
            GateKind::Buf | GateKind::Not => None, // output follows input; no side objective
            GateKind::Mux2 => {
                let sel = values[gate.inputs()[0].index()];
                let a = gate.inputs()[1];
                let b = gate.inputs()[2];
                let sel_net = gate.inputs()[0];
                if sel.is_fault_effect() {
                    // Effect on select: data inputs must differ.
                    let va = values[a.index()];
                    let vb = values[b.index()];
                    if va.good == V3::X {
                        let target = if vb.good.is_binary() {
                            vb.good.not()
                        } else {
                            V3::One
                        };
                        return Some((a, target));
                    }
                    if vb.good == V3::X {
                        let target = if va.good.is_binary() {
                            va.good.not()
                        } else {
                            V3::One
                        };
                        return Some((b, target));
                    }
                    None
                } else if sel.good == V3::X {
                    // Select the input carrying the effect.
                    let va = values[a.index()];
                    Some((
                        sel_net,
                        if va.is_fault_effect() {
                            V3::Zero
                        } else {
                            V3::One
                        },
                    ))
                } else {
                    // Select known; effect must be on the selected leg
                    // already — nothing more to set here.
                    None
                }
            }
        }
    }

    /// Walks an objective back to an unassigned view input.
    fn backtrace(&self, mut net: NetId, mut val: V3) -> Option<(usize, bool)> {
        let values = &self.values;
        loop {
            debug_assert!(val.is_binary());
            let idx = self.input_of_net[net.index()];
            if idx != usize::MAX {
                if values[net.index()].good != V3::X {
                    return None; // already assigned: conflict in objective
                }
                return Some((idx, val == V3::One));
            }
            let gid = match self.nl.net(net).driver() {
                NetDriver::Gate(g) => g,
                // Constants or unexposed registers cannot be set.
                _ => return None,
            };
            let gate = self.nl.gate(gid);
            let kind = gate.kind();
            let mut x_buf = [NetId::from_index(0); 3];
            let mut n_x = 0usize;
            for &inp in gate.inputs() {
                if values[inp.index()].good == V3::X {
                    x_buf[n_x] = inp;
                    n_x += 1;
                }
            }
            let x_inputs = &x_buf[..n_x];
            if x_inputs.is_empty() {
                return None;
            }
            // Choose the easiest (And=all-1 → hardest; any-0 → easiest):
            // depth is the controllability proxy.
            let easiest = *x_inputs
                .iter()
                .min_by_key(|n| self.depth[n.index()])
                .expect("non-empty");
            let hardest = *x_inputs
                .iter()
                .max_by_key(|n| self.depth[n.index()])
                .expect("non-empty");
            let (next, next_val) = match kind {
                GateKind::Buf => (x_inputs[0], val),
                GateKind::Not => (x_inputs[0], val.not()),
                GateKind::And => match val {
                    V3::One => (hardest, V3::One),
                    _ => (easiest, V3::Zero),
                },
                GateKind::Nand => match val {
                    V3::Zero => (hardest, V3::One),
                    _ => (easiest, V3::Zero),
                },
                GateKind::Or => match val {
                    V3::Zero => (hardest, V3::Zero),
                    _ => (easiest, V3::One),
                },
                GateKind::Nor => match val {
                    V3::One => (hardest, V3::Zero),
                    _ => (easiest, V3::One),
                },
                GateKind::Xor | GateKind::Xnor => {
                    let a = gate.inputs()[0];
                    let b = gate.inputs()[1];
                    let (known, unknown) = if values[a.index()].good == V3::X {
                        (values[b.index()].good, a)
                    } else {
                        (values[a.index()].good, b)
                    };
                    let target = if kind == GateKind::Xor {
                        val
                    } else {
                        val.not()
                    };
                    let v = if known.is_binary() {
                        target.xor(known)
                    } else {
                        target // both X: pick one side arbitrarily
                    };
                    (unknown, if v.is_binary() { v } else { V3::Zero })
                }
                GateKind::Mux2 => {
                    // Descend only through X lines: the select may carry a
                    // fault effect (D/D̄ — binary in the good half, but
                    // not a settable line), in which case any X data leg
                    // is still a valid decision point.
                    let sel_net = gate.inputs()[0];
                    if values[sel_net.index()].good == V3::X {
                        (sel_net, V3::Zero)
                    } else {
                        let leg = match values[sel_net.index()].good {
                            V3::Zero => gate.inputs()[1],
                            _ => gate.inputs()[2],
                        };
                        if values[leg.index()].good == V3::X {
                            (leg, val)
                        } else {
                            (x_inputs[0], val)
                        }
                    }
                }
            };
            if values[next.index()].good != V3::X {
                return None;
            }
            net = next;
            val = next_val;
        }
    }
}

/// Applies a stem fault to a freshly computed net value, collapsing
/// half-known values to X (classic 5-valued domain).
fn inject(net: NetId, v: V5, fault: Fault) -> V5 {
    let v = match fault.site {
        FaultSite::Net(fnet) if fnet == net => V5 {
            good: v.good,
            faulty: V3::from_bool(fault.stuck),
        },
        _ => v,
    };
    canon(v)
}

/// Collapses a value with any unknown half to full X, staying in the
/// classic {0, 1, X, D, D̄} domain.
fn canon(v: V5) -> V5 {
    if v.good.is_binary() && v.faulty.is_binary() {
        v
    } else {
        V5::X
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use crate::faultsim::FaultSimulator;
    use crate::pattern::{Pattern, PatternBatch};
    use tta_netlist::NetlistBuilder;

    fn check_podem_pattern(nl: Netlist, fault: Fault) {
        let view = CombView::full_scan(&nl);
        let mut podem = Podem::new(&nl, &view, 10_000);
        let outcome = podem.generate(fault);
        let PodemOutcome::Test(cube) = outcome else {
            panic!("expected a test for {fault}, got {outcome:?}");
        };
        // X-fill with zeros and confirm via fault simulation.
        let bits: Vec<bool> = cube.iter().map(|v| *v == V3::One).collect();
        drop(podem);
        let mut fs = FaultSimulator::new(nl);
        let p = Pattern::new(bits);
        let batch = PatternBatch::pack(fs.view(), &[&p]);
        let good = fs.good_values(&batch);
        assert_eq!(fs.detect_mask(&good, &batch, fault), 1, "{fault}");
    }

    #[test]
    fn finds_test_for_and_output_sa0() {
        let mut b = NetlistBuilder::new("and");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let nl = b.finish();
        let ynet = nl.primary_outputs()[0].1;
        check_podem_pattern(nl, Fault::sa0(ynet));
    }

    #[test]
    fn finds_test_through_reconvergence() {
        // y = (a&b) ^ (a|c): reconvergent fanout on a.
        let mut b = NetlistBuilder::new("reconv");
        let a = b.input("a");
        let x = b.input("b");
        let c = b.input("c");
        let g1 = b.and2(a, x);
        let g2 = b.or2(a, c);
        let y = b.xor2(g1, g2);
        b.output("y", y);
        let nl = b.finish();
        let g1out = nl.gates()[0].output();
        check_podem_pattern(nl, Fault::sa1(g1out));
    }

    #[test]
    fn proves_redundant_fault_untestable() {
        // y = a | (a & b): the AND output sa0 is undetectable (absorption).
        let mut b = NetlistBuilder::new("redundant");
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.and2(a, c);
        let y = b.or2(a, g1);
        b.output("y", y);
        let nl = b.finish();
        let g1out = nl.gates()[0].output();
        let view = CombView::full_scan(&nl);
        let mut podem = Podem::new(&nl, &view, 10_000);
        assert_eq!(podem.generate(Fault::sa0(g1out)), PodemOutcome::Untestable);
    }

    #[test]
    fn finds_test_behind_register() {
        let mut b = NetlistBuilder::new("seq");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.and2(a, c);
        let q = b.dff("r", x);
        let y = b.not(q);
        b.output("y", y);
        let nl = b.finish();
        let xnet = nl.gates()[0].output();
        check_podem_pattern(nl, Fault::sa1(xnet));
    }

    #[test]
    fn finds_test_through_mux() {
        let mut b = NetlistBuilder::new("mux");
        let s = b.input("s");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.mux2(s, a, c);
        b.output("y", y);
        let nl = b.finish();
        let anet = nl.find_net("a").unwrap();
        check_podem_pattern(nl, Fault::sa0(anet));
    }

    #[test]
    fn pin_fault_on_branch_gets_test() {
        let mut b = NetlistBuilder::new("branch");
        let a = b.input("a");
        let x = b.input("b");
        let c = b.input("c");
        let g1 = b.and2(a, x);
        let g2 = b.or2(a, c);
        b.output("y0", g1);
        b.output("y1", g2);
        let nl = b.finish();
        let or_gate = nl
            .gates()
            .iter()
            .position(|g| g.kind() == GateKind::Or)
            .unwrap();
        let fault = Fault {
            site: FaultSite::GatePin(GateId::from_index(or_gate), 0),
            stuck: true,
        };
        check_podem_pattern(nl, fault);
    }

    #[test]
    fn scratch_reuse_is_stateless_across_faults() {
        // Running a second fault on the same engine must give the same
        // outcome as a fresh engine (scratch fully re-initialised).
        let mut b = NetlistBuilder::new("pair");
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.and2(a, c);
        let y = b.or2(a, g1);
        b.output("y", y);
        let nl = b.finish();
        let g1out = nl.gates()[0].output();
        let view = CombView::full_scan(&nl);
        let mut shared = Podem::new(&nl, &view, 10_000);
        let first = shared.generate(Fault::sa1(g1out));
        let second = shared.generate(Fault::sa0(g1out));
        let mut fresh = Podem::new(&nl, &view, 10_000);
        assert_eq!(fresh.generate(Fault::sa1(g1out)), first);
        let mut fresh = Podem::new(&nl, &view, 10_000);
        assert_eq!(fresh.generate(Fault::sa0(g1out)), second);
        assert_eq!(second, PodemOutcome::Untestable);
    }
}
