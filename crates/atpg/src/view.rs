//! The combinational (full-scan / functional-access) view of a component.
//!
//! In the paper's methodology every pipeline register of a component is
//! directly loadable from a move bus and the result register directly
//! observable on one, so the ATPG problem is purely combinational:
//! flip-flop Q outputs become pseudo primary inputs, flip-flop D nets
//! pseudo primary outputs.

use tta_netlist::{NetId, Netlist};

/// Maps a sequential netlist onto the combinational test view.
#[derive(Debug, Clone)]
pub struct CombView {
    inputs: Vec<NetId>,
    observes: Vec<NetId>,
    n_real_pis: usize,
}

impl CombView {
    /// Full-scan view: PIs + flip-flop Qs controllable; POs + flip-flop Ds
    /// observable. This is the view used for component back-annotation.
    pub fn full_scan(nl: &Netlist) -> Self {
        let mut inputs: Vec<NetId> = nl.primary_inputs().to_vec();
        let n_real_pis = inputs.len();
        inputs.extend(nl.dffs().iter().map(|ff| ff.q()));
        let mut observes: Vec<NetId> = nl.primary_outputs().iter().map(|(_, n)| *n).collect();
        observes.extend(nl.dffs().iter().map(|ff| ff.d()));
        CombView {
            inputs,
            observes,
            n_real_pis,
        }
    }

    /// Combinational-only view: just the real PIs and POs (used for pure
    /// combinational blocks such as a socket's decode logic).
    pub fn combinational(nl: &Netlist) -> Self {
        CombView {
            inputs: nl.primary_inputs().to_vec(),
            observes: nl.primary_outputs().iter().map(|(_, n)| *n).collect(),
            n_real_pis: nl.primary_inputs().len(),
        }
    }

    /// Controllable nets: real PIs first, then pseudo (flip-flop Q) inputs.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Observable nets: real POs first, then pseudo (flip-flop D) outputs.
    pub fn observes(&self) -> &[NetId] {
        &self.observes
    }

    /// How many of [`Self::inputs`] are real primary inputs.
    pub fn real_pi_count(&self) -> usize {
        self.n_real_pis
    }

    /// Splits an assignment over [`Self::inputs`] into the `(pi, state)`
    /// vectors expected by the logic simulator.
    pub fn split_assignment<'a, T: Copy>(&self, values: &'a [T]) -> (&'a [T], &'a [T]) {
        values.split_at(self.n_real_pis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_netlist::NetlistBuilder;

    #[test]
    fn full_scan_exposes_registers() {
        let mut b = NetlistBuilder::new("pipe");
        let a = b.input("a");
        let q = b.dff("r", a);
        let y = b.not(q);
        b.output("y", y);
        let nl = b.finish();
        let v = CombView::full_scan(&nl);
        assert_eq!(v.inputs().len(), 2); // a + r.q
        assert_eq!(v.observes().len(), 2); // y + r.d
        assert_eq!(v.real_pi_count(), 1);
    }

    #[test]
    fn combinational_view_hides_registers() {
        let mut b = NetlistBuilder::new("pipe");
        let a = b.input("a");
        let q = b.dff("r", a);
        let y = b.not(q);
        b.output("y", y);
        let nl = b.finish();
        let v = CombView::combinational(&nl);
        assert_eq!(v.inputs().len(), 1);
        assert_eq!(v.observes().len(), 1);
    }
}
