//! Single stuck-at fault model.

use std::fmt;

use tta_netlist::netlist::Fanout;
use tta_netlist::{GateId, NetId, Netlist};

/// Where a stuck-at fault sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// On a net (the *stem*): affects every reader.
    Net(NetId),
    /// On one input pin of one gate (a fanout *branch*): affects only that
    /// reader. Only generated where the driving net has fanout > 1.
    GatePin(GateId, u8),
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Fault location.
    pub site: FaultSite,
    /// Stuck value: `false` = stuck-at-0, `true` = stuck-at-1.
    pub stuck: bool,
}

impl Fault {
    /// Stuck-at-0 on a net.
    pub fn sa0(net: NetId) -> Self {
        Fault {
            site: FaultSite::Net(net),
            stuck: false,
        }
    }

    /// Stuck-at-1 on a net.
    pub fn sa1(net: NetId) -> Self {
        Fault {
            site: FaultSite::Net(net),
            stuck: true,
        }
    }

    /// The net whose value the fault corrupts (for a pin fault, the net
    /// feeding that pin).
    pub fn net(&self, nl: &Netlist) -> NetId {
        match self.site {
            FaultSite::Net(n) => n,
            FaultSite::GatePin(g, p) => nl.gate(g).inputs()[p as usize],
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = u8::from(self.stuck);
        match self.site {
            FaultSite::Net(n) => write!(f, "{n}/sa{v}"),
            FaultSite::GatePin(g, p) => write!(f, "{g}.in{p}/sa{v}"),
        }
    }
}

/// The complete (uncollapsed) fault universe of a netlist.
#[derive(Debug, Clone)]
pub struct FaultUniverse {
    faults: Vec<Fault>,
}

impl FaultUniverse {
    /// Enumerates stem faults on every net and branch faults on every gate
    /// input pin whose driving net fans out to more than one reader —
    /// the classic stem/branch universe for single stuck-at testing.
    pub fn enumerate(nl: &Netlist) -> Self {
        let fanout: Fanout = nl.fanout_table();
        let mut faults = Vec::new();
        for i in 0..nl.net_count() {
            let net = NetId::from_index(i);
            faults.push(Fault::sa0(net));
            faults.push(Fault::sa1(net));
        }
        for (gi, gate) in nl.gates().iter().enumerate() {
            for (pin, inp) in gate.inputs().iter().enumerate() {
                if fanout.reader_count(*inp) > 1 {
                    let site = FaultSite::GatePin(GateId::from_index(gi), pin as u8);
                    faults.push(Fault { site, stuck: false });
                    faults.push(Fault { site, stuck: true });
                }
            }
        }
        FaultUniverse { faults }
    }

    /// All faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the universe is empty (never, for a non-trivial netlist).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub(crate) fn from_faults(faults: Vec<Fault>) -> Self {
        FaultUniverse { faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_netlist::NetlistBuilder;

    #[test]
    fn universe_counts_stems_and_branches() {
        // y = (a & b) | (a & c): `a` fans out to two gates -> branch faults.
        let mut b = NetlistBuilder::new("f");
        let a = b.input("a");
        let x = b.input("x");
        let c = b.input("c");
        let g1 = b.and2(a, x);
        let g2 = b.and2(a, c);
        let y = b.or2(g1, g2);
        b.output("y", y);
        let nl = b.finish();
        let u = FaultUniverse::enumerate(&nl);
        // Nets: a, x, c, g1, g2, y = 6 -> 12 stem faults.
        // Branches: a feeds 2 gate pins (fanout 2) -> 2 pins * 2 = 4.
        assert_eq!(u.len(), 12 + 4);
    }

    #[test]
    fn fault_display_is_stable() {
        let f = Fault::sa0(NetId::from_index(3));
        assert_eq!(f.to_string(), "n3/sa0");
    }
}
