//! Three- and five-valued logic for deterministic test generation.
//!
//! PODEM reasons in the classic D-calculus: each line carries a pair of
//! three-valued (0/1/X) values — one for the good circuit, one for the
//! faulty circuit. `D` is good-1/faulty-0, `D̄` is good-0/faulty-1.

use tta_netlist::GateKind;

/// Three-valued logic: 0, 1, unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum V3 {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / unassigned.
    X,
}

impl V3 {
    /// From a boolean.
    pub fn from_bool(b: bool) -> Self {
        if b {
            V3::One
        } else {
            V3::Zero
        }
    }

    /// Is this a binary (non-X) value?
    pub fn is_binary(self) -> bool {
        self != V3::X
    }

    /// Logical complement (X stays X).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            V3::Zero => V3::One,
            V3::One => V3::Zero,
            V3::X => V3::X,
        }
    }

    /// Three-valued AND.
    pub fn and(self, other: Self) -> Self {
        match (self, other) {
            (V3::Zero, _) | (_, V3::Zero) => V3::Zero,
            (V3::One, V3::One) => V3::One,
            _ => V3::X,
        }
    }

    /// Three-valued OR.
    pub fn or(self, other: Self) -> Self {
        match (self, other) {
            (V3::One, _) | (_, V3::One) => V3::One,
            (V3::Zero, V3::Zero) => V3::Zero,
            _ => V3::X,
        }
    }

    /// Three-valued XOR.
    pub fn xor(self, other: Self) -> Self {
        match (self, other) {
            (V3::X, _) | (_, V3::X) => V3::X,
            (a, b) if a == b => V3::Zero,
            _ => V3::One,
        }
    }

    /// Evaluates a gate in three-valued logic.
    pub fn eval_gate(kind: GateKind, ins: &[V3]) -> V3 {
        match kind {
            GateKind::Buf => ins[0],
            GateKind::Not => ins[0].not(),
            GateKind::And => ins[0].and(ins[1]),
            GateKind::Or => ins[0].or(ins[1]),
            GateKind::Nand => ins[0].and(ins[1]).not(),
            GateKind::Nor => ins[0].or(ins[1]).not(),
            GateKind::Xor => ins[0].xor(ins[1]),
            GateKind::Xnor => ins[0].xor(ins[1]).not(),
            GateKind::Mux2 => match ins[0] {
                V3::Zero => ins[1],
                V3::One => ins[2],
                // sel unknown: output known only if both data agree.
                V3::X => {
                    if ins[1] == ins[2] && ins[1].is_binary() {
                        ins[1]
                    } else {
                        V3::X
                    }
                }
            },
        }
    }
}

/// Five-valued D-calculus value: a (good, faulty) pair of [`V3`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct V5 {
    /// Good-circuit value.
    pub good: V3,
    /// Faulty-circuit value.
    pub faulty: V3,
}

impl V5 {
    /// Constant 0 in both circuits.
    pub const ZERO: V5 = V5 {
        good: V3::Zero,
        faulty: V3::Zero,
    };
    /// Constant 1 in both circuits.
    pub const ONE: V5 = V5 {
        good: V3::One,
        faulty: V3::One,
    };
    /// Unknown in both circuits.
    pub const X: V5 = V5 {
        good: V3::X,
        faulty: V3::X,
    };
    /// `D`: good 1, faulty 0.
    pub const D: V5 = V5 {
        good: V3::One,
        faulty: V3::Zero,
    };
    /// `D̄`: good 0, faulty 1.
    pub const DBAR: V5 = V5 {
        good: V3::Zero,
        faulty: V3::One,
    };

    /// Builds from a binary good=faulty value.
    pub fn from_bool(b: bool) -> Self {
        if b {
            V5::ONE
        } else {
            V5::ZERO
        }
    }

    /// Is this line carrying a fault effect (`D` or `D̄`)?
    pub fn is_fault_effect(self) -> bool {
        self == V5::D || self == V5::DBAR
    }

    /// Is the good value binary and equal in both circuits?
    pub fn is_binary(self) -> bool {
        self.good.is_binary() && self.good == self.faulty
    }

    /// Evaluates a gate in the D-calculus (componentwise on the pair).
    ///
    /// Allocation-free: this sits in the innermost implication loop of
    /// PODEM, so the component halves are split into stack buffers.
    pub fn eval_gate(kind: GateKind, ins: &[V5]) -> V5 {
        let mut goods = [V3::X; 3];
        let mut faults = [V3::X; 3];
        for (i, v) in ins.iter().enumerate() {
            goods[i] = v.good;
            faults[i] = v.faulty;
        }
        V5 {
            good: V3::eval_gate(kind, &goods[..ins.len()]),
            faulty: V3::eval_gate(kind, &faults[..ins.len()]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_through_and_with_one() {
        let out = V5::eval_gate(GateKind::And, &[V5::D, V5::ONE]);
        assert_eq!(out, V5::D);
    }

    #[test]
    fn d_blocked_by_zero() {
        let out = V5::eval_gate(GateKind::And, &[V5::D, V5::ZERO]);
        assert_eq!(out, V5::ZERO);
    }

    #[test]
    fn d_inverts_through_nand() {
        let out = V5::eval_gate(GateKind::Nand, &[V5::D, V5::ONE]);
        assert_eq!(out, V5::DBAR);
    }

    #[test]
    fn xor_of_d_and_d_cancels() {
        let out = V5::eval_gate(GateKind::Xor, &[V5::D, V5::D]);
        assert_eq!(out, V5::ZERO);
    }

    #[test]
    fn mux_with_unknown_select_but_agreeing_data() {
        let out = V3::eval_gate(GateKind::Mux2, &[V3::X, V3::One, V3::One]);
        assert_eq!(out, V3::One);
        let out = V3::eval_gate(GateKind::Mux2, &[V3::X, V3::One, V3::Zero]);
        assert_eq!(out, V3::X);
    }

    #[test]
    fn three_valued_tables() {
        assert_eq!(V3::X.and(V3::Zero), V3::Zero);
        assert_eq!(V3::X.and(V3::One), V3::X);
        assert_eq!(V3::X.or(V3::One), V3::One);
        assert_eq!(V3::X.or(V3::Zero), V3::X);
        assert_eq!(V3::X.xor(V3::One), V3::X);
    }
}
