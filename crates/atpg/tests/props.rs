//! Property-based tests of the test-generation stack on *random*
//! combinational circuits: PODEM's verdicts are always confirmed by
//! independent fault simulation, and fault simulation itself agrees with
//! brute-force faulty-circuit resimulation.

use proptest::prelude::*;
use tta_atpg::fault::{Fault, FaultUniverse};
use tta_atpg::pattern::{Pattern, PatternBatch};
use tta_atpg::podem::{Podem, PodemOutcome};
use tta_atpg::v5::V3;
use tta_atpg::{CombView, FaultSimulator};
use tta_netlist::{GateKind, NetId, Netlist, NetlistBuilder, Simulator};

/// Deterministically builds a random DAG circuit from a seed.
fn random_circuit(seed: u64, n_inputs: usize, n_gates: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("rand{seed}"));
    let mut lcg = seed | 1;
    let mut next = move || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (lcg >> 33) as usize
    };
    let mut nets: Vec<NetId> = (0..n_inputs).map(|i| b.input(format!("i{i}"))).collect();
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Mux2,
    ];
    for _ in 0..n_gates {
        let kind = kinds[next() % kinds.len()];
        let pick = |next: &mut dyn FnMut() -> usize, nets: &[NetId]| nets[next() % nets.len()];
        let out = match kind.arity() {
            1 => {
                let a = pick(&mut next, &nets);
                b.gate(kind, &[a])
            }
            2 => {
                let a = pick(&mut next, &nets);
                let c = pick(&mut next, &nets);
                b.gate(kind, &[a, c])
            }
            _ => {
                let s = pick(&mut next, &nets);
                let a = pick(&mut next, &nets);
                let c = pick(&mut next, &nets);
                b.gate(kind, &[s, a, c])
            }
        };
        nets.push(out);
    }
    // Observe the last few nets so deep logic stays visible.
    for (k, net) in nets.iter().rev().take(4).enumerate() {
        b.output(format!("o{k}"), *net);
    }
    b.finish()
}

/// Brute force: full resimulation with the fault forced on its net.
fn brute_force_detects(nl: &Netlist, fault: Fault, pattern: &Pattern) -> bool {
    let sim = Simulator::new(nl);
    let view = CombView::full_scan(nl);
    let words: Vec<u64> = pattern.bits().iter().map(|&b| u64::from(b)).collect();
    let (pi, state) = view.split_assignment(&words);
    let good = sim.eval(nl, pi, state);
    // Faulty circuit: rebuild evaluation manually with the stuck net.
    // (Only stem faults are brute-forced; pin faults are covered by the
    // simulator's own unit tests.)
    let tta_atpg::fault::FaultSite::Net(fnet) = fault.site else {
        return false;
    };
    let mut faulty = good.clone();
    faulty[fnet.index()] = if fault.stuck { u64::MAX } else { 0 };
    // Re-evaluate topologically with the forced net pinned.
    let mut ins = [0u64; 3];
    for &gid in nl.topo_order() {
        let g = nl.gate(gid);
        for (k, inp) in g.inputs().iter().enumerate() {
            ins[k] = faulty[inp.index()];
        }
        let out = g.kind().eval(&ins[..g.inputs().len()]);
        let onet = g.output();
        if onet != fnet {
            faulty[onet.index()] = out;
        }
    }
    view.observes()
        .iter()
        .any(|o| (good[o.index()] ^ faulty[o.index()]) & 1 == 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fault_sim_agrees_with_brute_force(seed in 0u64..10_000, pat_seed in 0u64..1000) {
        let nl = random_circuit(seed, 5, 20);
        let universe = FaultUniverse::enumerate(&nl);
        let mut fs = FaultSimulator::new(nl.clone());
        // One deterministic pattern from pat_seed.
        let n = fs.view().inputs().len();
        let bits: Vec<bool> = (0..n).map(|i| (pat_seed >> (i % 60)) & 1 == 1).collect();
        let pattern = Pattern::new(bits);
        let batch = PatternBatch::pack(fs.view(), &[&pattern]);
        let good = fs.good_values(&batch);
        for fault in universe.faults().iter().take(40) {
            if !matches!(fault.site, tta_atpg::fault::FaultSite::Net(_)) {
                continue;
            }
            let fast = fs.detect_mask(&good, &batch, *fault) & 1 == 1;
            let brute = brute_force_detects(&nl, *fault, &pattern);
            prop_assert_eq!(fast, brute, "fault {} seed {}", fault, seed);
        }
    }

    #[test]
    fn podem_tests_always_confirmed_by_fault_sim(seed in 0u64..10_000) {
        let nl = random_circuit(seed, 5, 16);
        let view = CombView::full_scan(&nl);
        let universe = FaultUniverse::enumerate(&nl);
        let mut podem = Podem::new(&nl, &view, 2_000);
        let mut fs = FaultSimulator::new(nl.clone());
        for fault in universe.faults().iter().take(30) {
            match podem.generate(*fault) {
                PodemOutcome::Test(cube) => {
                    let bits: Vec<bool> = cube.iter().map(|v| *v == V3::One).collect();
                    let p = Pattern::new(bits);
                    let batch = PatternBatch::pack(fs.view(), &[&p]);
                    let good = fs.good_values(&batch);
                    prop_assert!(
                        fs.detect_mask(&good, &batch, *fault) & 1 == 1,
                        "PODEM cube fails for {} on seed {}", fault, seed
                    );
                }
                PodemOutcome::Untestable | PodemOutcome::Aborted => {}
            }
        }
    }

    #[test]
    fn untestable_verdicts_survive_random_patterns(seed in 0u64..5_000) {
        // If PODEM proves a fault redundant, no random pattern may detect
        // it.
        let nl = random_circuit(seed, 4, 12);
        let view = CombView::full_scan(&nl);
        let universe = FaultUniverse::enumerate(&nl);
        let mut podem = Podem::new(&nl, &view, 50_000);
        let mut fs = FaultSimulator::new(nl.clone());
        let n = view.inputs().len();
        // 64 deterministic pseudo-random patterns.
        let patterns: Vec<Pattern> = (0..64u64)
            .map(|k| {
                Pattern::new(
                    (0..n)
                        .map(|i| (seed ^ (k * 0x9E3779B9)) >> (i % 53) & 1 == 1)
                        .collect(),
                )
            })
            .collect();
        let refs: Vec<&Pattern> = patterns.iter().collect();
        let batch = PatternBatch::pack(&view, &refs);
        let good = fs.good_values(&batch);
        for fault in universe.faults().iter().take(20) {
            if podem.generate(*fault) == PodemOutcome::Untestable {
                prop_assert_eq!(
                    fs.detect_mask(&good, &batch, *fault), 0,
                    "redundant fault {} detected!", fault
                );
            }
        }
    }
}
