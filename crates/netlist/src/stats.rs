//! Aggregate statistics of a netlist: the numbers the exploration
//! back-annotates for every predesigned component (area, delay, register
//! count), mirroring the paper's Synopsys/ATPG flow.

use std::fmt;

use crate::gate::GateKind;
use crate::netlist::Netlist;
use crate::timing;

/// Summary of one netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Design name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Combinational gate count.
    pub gates: usize,
    /// Flip-flop count (these become scannable state in the DfT flow).
    pub dffs: usize,
    /// Cell area in NAND2 gate equivalents.
    pub area: f64,
    /// Critical path in normalised gate delays.
    pub critical_path: f64,
    /// Deepest logic level.
    pub depth: u32,
    /// Gate histogram in [`GateKind::ALL`] order.
    pub histogram: [usize; 9],
}

impl NetlistStats {
    /// Computes statistics for `nl`.
    pub fn of(nl: &Netlist) -> Self {
        let mut histogram = [0usize; 9];
        for g in nl.gates() {
            let idx = GateKind::ALL
                .iter()
                .position(|k| *k == g.kind())
                .expect("all kinds enumerated");
            histogram[idx] += 1;
        }
        let t = timing::analyze(nl);
        NetlistStats {
            name: nl.name().to_string(),
            inputs: nl.primary_inputs().len(),
            outputs: nl.primary_outputs().len(),
            gates: nl.gate_count(),
            dffs: nl.dff_count(),
            area: nl.area(),
            critical_path: t.critical_path,
            depth: t.depth,
            histogram,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} PI, {} PO, {} gates, {} FFs, area {:.1} GE, Tcrit {:.1}, depth {}",
            self.name,
            self.inputs,
            self.outputs,
            self.gates,
            self.dffs,
            self.area,
            self.critical_path,
            self.depth
        )?;
        for (kind, count) in GateKind::ALL.iter().zip(self.histogram) {
            if count > 0 {
                writeln!(f, "  {kind:>5}: {count}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn stats_count_gates_by_kind() {
        let mut b = NetlistBuilder::new("mix");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.and2(a, c);
        let y = b.xor2(a, x);
        let z = b.not(y);
        b.output("z", z);
        let s = NetlistStats::of(&b.finish());
        assert_eq!(s.gates, 3);
        let and_idx = GateKind::ALL
            .iter()
            .position(|k| *k == GateKind::And)
            .unwrap();
        let xor_idx = GateKind::ALL
            .iter()
            .position(|k| *k == GateKind::Xor)
            .unwrap();
        assert_eq!(s.histogram[and_idx], 1);
        assert_eq!(s.histogram[xor_idx], 1);
        assert!(s.to_string().contains("mix"));
    }
}
