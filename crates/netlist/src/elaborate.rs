//! Per-point netlist elaboration: assembles one flat gate-level
//! [`Netlist`] for a whole explored [`Architecture`].
//!
//! The paper's back-annotation flow costs each *component* in isolation;
//! this module goes one step further and stitches the actual component
//! netlists of a candidate architecture together — every functional unit
//! behind its socket group (the shared front of
//! [`crate::components::socket_group`]), every register file behind
//! per-port input/output sockets, and the move buses as OR-merge fabric —
//! so that graph-level static analyses (loaded timing, lint, fanout
//! distribution) and a structural Verilog export can run on the design the
//! sweep actually selected.
//!
//! # Boundary model
//!
//! The instruction-fetch/decode path is not elaborated (the paper costs
//! the control store analytically). Each move bus is therefore cut at its
//! decoded interface: primary inputs `bus{b}_data[width]`,
//! `bus{b}_addr[5]` and `bus{b}_valid` carry the decoded move, and primary
//! outputs `bus{b}_result[width]` / `bus{b}_drive` expose the OR-merged
//! result traffic. Component pins with no architectural binding (ALU
//! opcodes, RF register addresses, memory data pins, …) are promoted to
//! primary ports named `{instance}_{pin}`, which keeps every generated
//! gate observable — the lint pass holds elaborated points to the same
//! zero-diagnostic bar as the standalone component generators.
//!
//! # Incremental re-elaboration
//!
//! [`IncrementalElaborator`] mirrors the sweep's `CarriedFolds` idea at
//! the netlist level: consecutive Gray-walk neighbours share long
//! component prefixes, so the builder is rewound to the first differing
//! segment and only the suffix (plus the always-last bus fabric) is
//! re-emitted. The result is differentially guaranteed bit-identical to a
//! from-scratch [`elaborate`] call.

use std::collections::HashMap;
use std::fmt;

use tta_arch::{Architecture, ArchitectureError, FuInstance, FuKind, RfInstance};

use crate::builder::{BuildError, BuilderMark, NetlistBuilder, Word};
use crate::components::socket::{emit_id_match, emit_socket_group_front, SocketTap};
use crate::components::{self};
use crate::netlist::{NetDriver, NetId, Netlist};

/// Width of the per-bus socket-address field, matching the back-annotation
/// flow's socket-group parameterisation.
pub const SOCKET_ID_BITS: usize = 5;

/// Errors reported by [`elaborate`] / [`IncrementalElaborator::advance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElaborateError {
    /// The architecture fails its own structural validation.
    Architecture(ArchitectureError),
    /// The stitched netlist fails to finalise (never expected from the
    /// shipped generators; indicates a broken custom component).
    Build(BuildError),
}

impl fmt::Display for ElaborateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElaborateError::Architecture(e) => write!(f, "invalid architecture: {e}"),
            ElaborateError::Build(e) => write!(f, "elaboration failed: {e}"),
        }
    }
}

impl std::error::Error for ElaborateError {}

impl From<ArchitectureError> for ElaborateError {
    fn from(e: ArchitectureError) -> Self {
        ElaborateError::Architecture(e)
    }
}

impl From<BuildError> for ElaborateError {
    fn from(e: BuildError) -> Self {
        ElaborateError::Build(e)
    }
}

/// Elaborates one architecture from scratch.
///
/// # Errors
///
/// Returns an [`ElaborateError`] if the architecture is structurally
/// invalid or the stitched netlist cannot be finalised.
pub fn elaborate(arch: &Architecture) -> Result<Netlist, ElaborateError> {
    IncrementalElaborator::new().advance(arch)
}

/// The decoded-move interface of one bus, created by the prologue segment.
struct BusTapNets {
    data: Word,
    addr: Word,
    valid: NetId,
}

/// One socket group's contribution to a bus: the `Fout`-gated result word
/// and the drive strobe, OR-merged by the fabric segment.
#[derive(Clone)]
struct BusDrive {
    bus: usize,
    word: Word,
    drive: NetId,
}

/// Identity of one elaboration segment; segments with equal keys emit
/// byte-identical logic given an identical builder prefix.
#[derive(Clone, PartialEq, Eq)]
enum SegmentKey {
    Prologue { width: usize, buses: usize },
    Fu(FuInstance),
    Rf(RfInstance),
}

struct Segment {
    key: SegmentKey,
    /// Builder extent *before* this segment was emitted.
    mark: BuilderMark,
    drives: Vec<BusDrive>,
}

/// Cache key for generated component netlists (shared across points).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum CompKey {
    Fu(FuKind, usize),
    Rf {
        width: usize,
        regs: usize,
        nin: usize,
        nout: usize,
    },
}

/// Incrementally re-elaborates a sequence of architectures, reusing the
/// common netlist prefix between consecutive points.
///
/// Feeding it a Gray-code neighbour walk makes most [`advance`] calls
/// rebuild only one component group plus the bus fabric; feeding it
/// arbitrary points degrades gracefully to from-scratch work. Either way
/// the produced netlist is bit-identical to [`elaborate`] on the same
/// architecture.
///
/// [`advance`]: IncrementalElaborator::advance
pub struct IncrementalElaborator {
    builder: NetlistBuilder,
    segments: Vec<Segment>,
    /// Bus taps created by the prologue (valid while `segments` is
    /// non-empty, since the prologue is always segment 0).
    taps: Vec<BusTapNets>,
    /// Builder extent before the bus fabric + output epilogue.
    fabric_mark: Option<BuilderMark>,
    /// Generated component netlists, keyed by their parameters.
    comp_cache: HashMap<CompKey, Netlist>,
    /// How many segments the last `advance` reused unchanged.
    last_reused: usize,
    /// How many segments the last `advance` (re-)emitted.
    last_emitted: usize,
}

impl Default for IncrementalElaborator {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalElaborator {
    /// Creates an elaborator with an empty prefix.
    pub fn new() -> Self {
        IncrementalElaborator {
            builder: NetlistBuilder::new("unelaborated"),
            segments: Vec::new(),
            taps: Vec::new(),
            fabric_mark: None,
            comp_cache: HashMap::new(),
            last_reused: 0,
            last_emitted: 0,
        }
    }

    /// Segments reused unchanged by the last [`Self::advance`] call.
    pub fn last_reused(&self) -> usize {
        self.last_reused
    }

    /// Segments (re-)emitted by the last [`Self::advance`] call.
    pub fn last_emitted(&self) -> usize {
        self.last_emitted
    }

    /// Elaborates `arch`, reusing whatever prefix it shares with the
    /// previously elaborated architecture.
    ///
    /// # Errors
    ///
    /// Returns an [`ElaborateError`] exactly like [`elaborate`].
    pub fn advance(&mut self, arch: &Architecture) -> Result<Netlist, ElaborateError> {
        arch.validate()?;
        // The design name tracks the point, not the structure.
        self.builder.set_name(arch.name.clone());

        // Discard the previous fabric + epilogue: it depends on every
        // segment, so it is re-emitted on every advance.
        if let Some(mark) = self.fabric_mark.take() {
            self.builder.rewind(mark);
        }

        // Desired segment sequence for this architecture.
        let mut want: Vec<SegmentKey> = Vec::with_capacity(1 + arch.fus.len() + arch.rfs.len());
        want.push(SegmentKey::Prologue {
            width: arch.width,
            buses: arch.buses,
        });
        want.extend(arch.fus.iter().cloned().map(SegmentKey::Fu));
        want.extend(arch.rfs.iter().cloned().map(SegmentKey::Rf));

        // Longest common prefix with what is already built.
        let mut keep = 0;
        while keep < self.segments.len()
            && keep < want.len()
            && self.segments[keep].key == want[keep]
        {
            keep += 1;
        }
        if keep < self.segments.len() {
            self.builder.rewind(self.segments[keep].mark);
            self.segments.truncate(keep);
        }
        self.last_reused = keep;
        self.last_emitted = want.len() - keep;

        // Emit the missing suffix.
        for key in want.into_iter().skip(keep) {
            let mark = self.builder.mark();
            let drives = match &key {
                SegmentKey::Prologue { width, buses } => {
                    self.taps = emit_prologue(&mut self.builder, *width, *buses);
                    Vec::new()
                }
                SegmentKey::Fu(fu) => {
                    let comp = self.component(CompKey::Fu(fu.kind, arch.width));
                    emit_fu(&mut self.builder, &self.taps, fu, &comp)
                }
                SegmentKey::Rf(rf) => {
                    let comp = self.component(CompKey::Rf {
                        width: arch.width,
                        regs: rf.regs,
                        nin: rf.nin(),
                        nout: rf.nout(),
                    });
                    emit_rf(&mut self.builder, &self.taps, rf, &comp)
                }
            };
            self.segments.push(Segment { key, mark, drives });
        }

        // Bus fabric: OR-merge every socket group's drive onto its bus.
        self.fabric_mark = Some(self.builder.mark());
        let all_drives: Vec<&BusDrive> =
            self.segments.iter().flat_map(|s| s.drives.iter()).collect();
        emit_fabric(&mut self.builder, arch.buses, arch.width, &all_drives);

        Ok(self.builder.try_finish()?)
    }

    fn component(&mut self, key: CompKey) -> Netlist {
        self.comp_cache
            .entry(key)
            .or_insert_with(|| match key {
                CompKey::Fu(kind, width) => match kind {
                    FuKind::Alu => components::alu(width).netlist,
                    FuKind::Cmp => components::cmp(width).netlist,
                    FuKind::Mul => components::mul(width).netlist,
                    FuKind::LdSt => components::load_store(width).netlist,
                    FuKind::Pc => components::pc(width).netlist,
                    FuKind::Immediate => components::immediate(width).netlist,
                },
                CompKey::Rf {
                    width,
                    regs,
                    nin,
                    nout,
                } => components::register_file(width, regs, nin, nout).netlist,
            })
            .clone()
    }
}

/// Declares the decoded-move interface of every bus.
fn emit_prologue(b: &mut NetlistBuilder, width: usize, buses: usize) -> Vec<BusTapNets> {
    (0..buses)
        .map(|bus| BusTapNets {
            data: b.input_word(&format!("bus{bus}_data"), width),
            addr: b.input_word(&format!("bus{bus}_addr"), SOCKET_ID_BITS),
            valid: b.input(format!("bus{bus}_valid")),
        })
        .collect()
}

/// Stitches a component netlist into the top-level builder.
///
/// `bind` maps component primary-input names (bit-granular, e.g.
/// `o_in[3]`) to already-existing top-level nets; unbound inputs are
/// promoted to top-level primary inputs named `{prefix}{pin}`. Returns the
/// component's primary outputs mapped into top-level nets.
fn stitch(
    b: &mut NetlistBuilder,
    prefix: &str,
    sub: &Netlist,
    bind: &HashMap<String, NetId>,
) -> HashMap<String, NetId> {
    let mut map: Vec<Option<NetId>> = vec![None; sub.net_count()];
    // Sources first: bound or promoted inputs, constants.
    for (i, net) in sub.nets().iter().enumerate() {
        match net.driver() {
            NetDriver::PrimaryInput(_) => {
                let name = net.name().expect("component inputs are named");
                let id = match bind.get(name) {
                    Some(&n) => n,
                    None => b.input(format!("{prefix}{name}")),
                };
                map[i] = Some(id);
            }
            NetDriver::Const0 => map[i] = Some(b.const0()),
            NetDriver::Const1 => map[i] = Some(b.const1()),
            _ => {}
        }
    }
    // Flip-flops as feedback declarations (D patched once gates exist).
    let mut ffmap = Vec::with_capacity(sub.dff_count());
    for ff in sub.dffs() {
        let (q, fid) = b.dff_feedback(format!("{prefix}{}", ff.name()));
        map[ff.q().index()] = Some(q);
        ffmap.push(fid);
    }
    // Gates in topological order, so inputs are always mapped already.
    for &gid in sub.topo_order() {
        let g = sub.gate(gid);
        let ins: Vec<NetId> = g
            .inputs()
            .iter()
            .map(|n| map[n.index()].expect("topological order maps inputs first"))
            .collect();
        let out = b.gate(g.kind(), &ins);
        map[g.output().index()] = Some(out);
    }
    for (ff, fid) in sub.dffs().iter().zip(&ffmap) {
        let d = map[ff.d().index()].expect("flip-flop D net is mapped");
        b.set_dff_d(*fid, d);
    }
    sub.primary_outputs()
        .iter()
        .map(|(name, n)| (name.clone(), map[n.index()].expect("output net is mapped")))
        .collect()
}

/// Collects the mapped bits of a component output word `name[0..width]`.
fn word_of(outputs: &HashMap<String, NetId>, name: &str, width: usize) -> Word {
    (0..width)
        .map(|i| {
            let key = format!("{name}[{i}]");
            *outputs
                .get(&key)
                .unwrap_or_else(|| panic!("component lacks output {key}"))
        })
        .collect()
}

/// Collects the mapped bits of an output word whose width is the
/// component's own business (e.g. the CMP's 1-bit flag register): bits are
/// taken from index 0 upward until the first missing key.
fn word_prefix_of(outputs: &HashMap<String, NetId>, name: &str) -> Word {
    let mut word = Word::new();
    while let Some(&n) = outputs.get(&format!("{name}[{}]", word.len())) {
        word.push(n);
    }
    word
}

fn bind_word(bind: &mut HashMap<String, NetId>, name: &str, word: &[NetId]) {
    for (i, &n) in word.iter().enumerate() {
        bind.insert(format!("{name}[{i}]"), n);
    }
}

/// Emits one functional unit behind its socket group.
fn emit_fu(
    b: &mut NetlistBuilder,
    taps: &[BusTapNets],
    fu: &FuInstance,
    comp: &Netlist,
) -> Vec<BusDrive> {
    let prefix = format!("{}_", fu.name);
    let width = taps.first().map_or(0, |t| t.data.len());
    let out_ready = b.input(format!("{prefix}out_ready"));

    // Socket taps: operand then trigger (immediates have no operand),
    // with per-group local socket ids 1, 2, … as in the standalone
    // socket-group generator. The PC's condition port only consumes one
    // bit, so its tap gates a one-bit slice of the bus.
    let operand = &taps[usize::from(fu.operand_bus.0)];
    let trigger = &taps[usize::from(fu.trigger_bus.0)];
    let mask = (1u64 << SOCKET_ID_BITS) - 1;
    let mut socket_taps: Vec<SocketTap<'_>> = Vec::with_capacity(2);
    if fu.kind != FuKind::Immediate {
        socket_taps.push(SocketTap {
            bus: &operand.data,
            addr: &operand.addr,
            valid: operand.valid,
            id_value: 1 & mask,
        });
    }
    let trigger_width = if fu.kind == FuKind::Pc {
        1
    } else {
        trigger.data.len()
    };
    socket_taps.push(SocketTap {
        bus: &trigger.data[..trigger_width],
        addr: &trigger.addr,
        valid: trigger.valid,
        id_value: (socket_taps.len() as u64 + 1) & mask,
    });
    let front = emit_socket_group_front(b, &prefix, &socket_taps, out_ready);

    // Bind the component's architectural pins to the socket front; every
    // remaining pin is promoted by `stitch`.
    let mut bind: HashMap<String, NetId> = HashMap::new();
    match fu.kind {
        FuKind::Alu | FuKind::Cmp | FuKind::Mul => {
            bind_word(&mut bind, "o_in", &front.data[0]);
            bind.insert("en_o".into(), front.enables[0]);
            bind_word(&mut bind, "t_in", &front.data[1]);
            bind.insert("en_t".into(), front.enables[1]);
        }
        FuKind::LdSt => {
            bind_word(&mut bind, "addr_in", &front.data[0]);
            bind.insert("en_addr".into(), front.enables[0]);
            bind_word(&mut bind, "data_in", &front.data[1]);
            bind.insert("en_data".into(), front.enables[1]);
        }
        FuKind::Pc => {
            bind_word(&mut bind, "target_in", &front.data[0]);
            bind.insert("en_target".into(), front.enables[0]);
            bind.insert("cond_in".into(), front.data[1][0]);
            bind.insert("en_cond".into(), front.enables[1]);
        }
        FuKind::Immediate => {
            bind_word(&mut bind, "imm_in", &front.data[0]);
            bind.insert("en".into(), front.enables[0]);
        }
    }
    let outputs = stitch(b, &prefix, comp, &bind);

    // Expose the component's off-datapath interface as top-level ports so
    // no generated logic becomes output-unreachable.
    let result = match fu.kind {
        // The CMP's result register is a 1-bit flag, so take whatever
        // width the component actually produced.
        FuKind::Alu | FuKind::Cmp | FuKind::Mul => word_prefix_of(&outputs, "r"),
        FuKind::LdSt => {
            b.output_word(
                &format!("{prefix}mem_addr"),
                &word_of(&outputs, "mem_addr", width),
            );
            b.output_word(
                &format!("{prefix}mem_wdata"),
                &word_of(&outputs, "mem_wdata", width),
            );
            b.output(format!("{prefix}mem_we"), outputs["mem_we"]);
            b.output(format!("{prefix}done"), outputs["done"]);
            word_of(&outputs, "r", width)
        }
        FuKind::Pc => {
            let iaddr = word_of(&outputs, "iaddr", width);
            b.output_word(&format!("{prefix}iaddr"), &iaddr);
            iaddr
        }
        FuKind::Immediate => word_of(&outputs, "imm_out", width),
    };

    // Output socket: the R register drives the result bus through Fout;
    // narrow results (the CMP flag) zero-extend onto the bus.
    let mut driven: Word = result.iter().map(|&bit| b.and2(bit, front.fout)).collect();
    while driven.len() < width {
        let zero = b.const0();
        driven.push(zero);
    }
    vec![BusDrive {
        bus: usize::from(fu.result_bus.0),
        word: driven,
        drive: front.fout,
    }]
}

/// Emits one register file behind per-port input/output sockets.
fn emit_rf(
    b: &mut NetlistBuilder,
    taps: &[BusTapNets],
    rf: &RfInstance,
    comp: &Netlist,
) -> Vec<BusDrive> {
    let prefix = format!("{}_", rf.name);
    let width = taps.first().map_or(0, |t| t.data.len());
    let mask = (1u64 << SOCKET_ID_BITS) - 1;

    // Write ports: one input socket each (ids 1, 2, …).
    let mut bind: HashMap<String, NetId> = HashMap::new();
    for (p, bus) in rf.write_ports.iter().enumerate() {
        let tap = &taps[usize::from(bus.0)];
        let matched = emit_id_match(b, &tap.addr, (p as u64 + 1) & mask, tap.valid);
        let fin = b.dff(format!("{prefix}wfin{p}"), matched);
        let gated: Word = tap.data.iter().map(|&bit| b.and2(bit, fin)).collect();
        bind_word(&mut bind, &format!("wdata{p}"), &gated);
        bind.insert(format!("wen{p}"), fin);
    }
    let outputs = stitch(b, &prefix, comp, &bind);

    // Read ports: one output socket each (ids continue after the write
    // ports), driving the read data onto the port's bus through Fout.
    let nin = rf.write_ports.len();
    rf.read_ports
        .iter()
        .enumerate()
        .map(|(p, bus)| {
            let tap = &taps[usize::from(bus.0)];
            let matched =
                emit_id_match(b, &tap.addr, (nin as u64 + 1 + p as u64) & mask, tap.valid);
            let fout = b.dff(format!("{prefix}rfout{p}"), matched);
            let rdata = word_of(&outputs, &format!("rdata{p}"), width);
            let driven: Word = rdata.iter().map(|&bit| b.and2(bit, fout)).collect();
            BusDrive {
                bus: usize::from(bus.0),
                word: driven,
                drive: fout,
            }
        })
        .collect()
}

/// OR-merges every socket group's gated result word onto its bus and
/// exposes the merged traffic as primary outputs.
fn emit_fabric(b: &mut NetlistBuilder, buses: usize, width: usize, drives: &[&BusDrive]) {
    for bus in 0..buses {
        let ours: Vec<&&BusDrive> = drives.iter().filter(|d| d.bus == bus).collect();
        let (word, drive) = match ours.split_first() {
            None => {
                let zero = b.const0();
                (vec![zero; width], zero)
            }
            Some((first, rest)) => {
                let mut word = first.word.clone();
                let mut drive = first.drive;
                for d in rest {
                    word = b.or_word(&word, &d.word);
                    drive = b.or2(drive, d.drive);
                }
                (word, drive)
            }
        };
        b.output_word(&format!("bus{bus}_result"), &word);
        b.output(format!("bus{bus}_drive"), drive);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_arch::Architecture;

    #[test]
    fn figure9_elaborates_clean() {
        let nl = elaborate(&Architecture::figure9()).expect("figure9 elaborates");
        assert_eq!(nl.validate(), Ok(()));
        assert_eq!(nl.name(), "figure9");
        // 2 buses * (16 data + 5 addr + 1 valid) decoded-move inputs, plus
        // promoted component pins.
        assert!(nl.primary_inputs().len() > 2 * (16 + SOCKET_ID_BITS + 1));
        // Every bus exposes its merged result word.
        assert!(nl.find_net("bus0_data[0]").is_some());
        let outs: Vec<&str> = nl
            .primary_outputs()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(outs.contains(&"bus0_result[15]"), "{outs:?}");
        assert!(outs.contains(&"bus1_drive"), "{outs:?}");
        assert!(outs.contains(&"ldst0_mem_we"), "{outs:?}");
        assert!(nl.area() > 0.0);
        assert!(nl.dff_count() > 100, "16-bit point has real state");
    }

    #[test]
    fn invalid_architecture_is_rejected() {
        let mut a = Architecture::figure9();
        a.buses = 0;
        assert!(matches!(
            elaborate(&a),
            Err(ElaborateError::Architecture(_))
        ));
    }

    #[test]
    fn incremental_walk_is_bit_identical_to_scratch() {
        // Mutate figure9 step by step the way a Gray walk would and check
        // every advance against a from-scratch elaboration.
        let mut points = Vec::new();
        let base = Architecture::figure9();
        points.push(base.clone());
        let mut p = base.clone();
        p.rfs[1].regs = 16;
        p.name = "p1".into();
        points.push(p.clone());
        p.fus[0].kind = FuKind::Mul; // alu0 slot becomes a multiplier
        p.name = "p2".into();
        points.push(p.clone());
        p.fus[1].trigger_bus = tta_arch::BusId(0);
        p.name = "p3".into();
        points.push(p.clone());
        // Jump back to the base point: a discontinuity.
        points.push(base);

        let mut inc = IncrementalElaborator::new();
        for point in &points {
            let fresh = elaborate(point).expect("scratch elaboration");
            let walked = inc.advance(point).expect("incremental elaboration");
            assert_eq!(walked.dump(), fresh.dump(), "point {}", point.name);
        }
        // The single-RF mutation at p1 must have reused the whole FU
        // prefix.
        let mut inc2 = IncrementalElaborator::new();
        inc2.advance(&points[0]).unwrap();
        inc2.advance(&points[1]).unwrap();
        assert!(inc2.last_reused() > points[1].fus.len());
    }
}
