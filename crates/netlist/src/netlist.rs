//! The structural netlist container: nets, gates, flip-flops, ports.

use std::collections::HashMap;
use std::fmt;

use crate::gate::{Gate, GateId};
use crate::library;

/// Identifier of a net (a single-bit signal) inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Returns the dense index of this net.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NetId` from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a D flip-flop inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DffId(pub(crate) u32);

impl DffId {
    /// Returns the dense index of this flip-flop.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `DffId` from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        DffId(index as u32)
    }
}

impl fmt::Display for DffId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ff{}", self.0)
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDriver {
    /// Primary input with its position in the PI list.
    PrimaryInput(u32),
    /// Output of a combinational gate.
    Gate(GateId),
    /// Q output of a flip-flop.
    DffQ(DffId),
    /// Constant zero.
    Const0,
    /// Constant one.
    Const1,
    /// Declared but not yet driven (only legal transiently inside the builder).
    Floating,
}

/// Metadata of one net.
#[derive(Debug, Clone)]
pub struct Net {
    pub(crate) driver: NetDriver,
    pub(crate) name: Option<String>,
}

impl Net {
    /// The driver of this net.
    #[inline]
    pub fn driver(&self) -> NetDriver {
        self.driver
    }

    /// Optional debug name (ports and registers are always named).
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// A D flip-flop: `q` takes the value of `d` at every clock edge.
///
/// Clock and reset are implicit — the whole datapath is single-clock, as in
/// the paper's hybrid-pipelined components.
#[derive(Debug, Clone)]
pub struct Dff {
    pub(crate) d: NetId,
    pub(crate) q: NetId,
    pub(crate) name: String,
}

impl Dff {
    /// Data input net.
    #[inline]
    pub fn d(&self) -> NetId {
        self.d
    }

    /// Q output net.
    #[inline]
    pub fn q(&self) -> NetId {
        self.q
    }

    /// Instance name (used by scan stitching and fault reports).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Errors reported by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net has no driver.
    FloatingNet(NetId),
    /// The combinational part of the netlist contains a cycle through the
    /// given net.
    CombinationalLoop(NetId),
    /// A primary output net does not exist.
    DanglingOutput(NetId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::FloatingNet(n) => write!(f, "net {n} has no driver"),
            NetlistError::CombinationalLoop(n) => {
                write!(f, "combinational loop through net {n}")
            }
            NetlistError::DanglingOutput(n) => write!(f, "primary output {n} does not exist"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A flat, single-clock, gate-level netlist.
///
/// Invariants (enforced by [`crate::NetlistBuilder`] and checked by
/// [`Netlist::validate`]):
///
/// * every net has exactly one driver;
/// * the gate graph restricted to combinational edges is acyclic;
/// * gate arities match their [`crate::GateKind`].
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) nets: Vec<Net>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) dffs: Vec<Dff>,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<(String, NetId)>,
    /// Gates in topological order (computed lazily by `validate`/builder).
    pub(crate) topo: Vec<GateId>,
}

impl Netlist {
    /// Assembles a netlist directly from its parts, *without* enforcing
    /// the builder's invariants.
    ///
    /// A topological order is computed on a best-effort basis (it is
    /// incomplete when the gate graph has combinational cycles) and no
    /// validation is performed — the result may be arbitrarily broken.
    /// This is the entry point for the lint engine's negative tests and
    /// for importing netlists from external frontends; run
    /// [`crate::lint::lint`] or [`Self::validate`] on the result before
    /// trusting it.
    pub fn from_raw_parts(
        name: impl Into<String>,
        nets: Vec<Net>,
        gates: Vec<Gate>,
        dffs: Vec<Dff>,
        inputs: Vec<NetId>,
        outputs: Vec<(String, NetId)>,
    ) -> Self {
        let mut nl = Netlist {
            name: name.into(),
            nets,
            gates,
            dffs,
            inputs,
            outputs,
            topo: Vec::new(),
        };
        let _complete = nl.compute_topo();
        nl
    }

    /// Splits a netlist back into its raw parts (the inverse of
    /// [`Self::from_raw_parts`], dropping the topological order).
    ///
    /// Useful for constructing deliberately-broken variants of a valid
    /// netlist in lint tests.
    #[allow(clippy::type_complexity)]
    pub fn into_raw_parts(
        self,
    ) -> (
        String,
        Vec<Net>,
        Vec<Gate>,
        Vec<Dff>,
        Vec<NetId>,
        Vec<(String, NetId)>,
    ) {
        (
            self.name,
            self.nets,
            self.gates,
            self.dffs,
            self.inputs,
            self.outputs,
        )
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Primary input nets in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs as `(name, net)` pairs in declaration order.
    pub fn primary_outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// All flip-flops.
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of combinational gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// Looks up one gate.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Looks up one net.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Looks up one flip-flop.
    pub fn dff(&self, id: DffId) -> &Dff {
        &self.dffs[id.index()]
    }

    /// Gates in a topological order of the combinational graph.
    ///
    /// Sources are primary inputs, constants and flip-flop Q outputs.
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// Finds a net by its debug name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name.as_deref() == Some(name))
            .map(NetId::from_index)
    }

    /// Total cell area in NAND2 gate equivalents (gates + flip-flops).
    pub fn area(&self) -> f64 {
        let gate_area: f64 = self
            .gates
            .iter()
            .map(|g| library::gate_area(g.kind()))
            .sum();
        gate_area + self.dffs.len() as f64 * library::DFF_AREA
    }

    /// Readers of every net: `(gate, pin)` pairs plus flip-flop D pins.
    ///
    /// This fanout table is used by fault enumeration (stem/branch split)
    /// and by the event-driven part of fault simulation.
    pub fn fanout_table(&self) -> Fanout {
        let mut gate_pins: Vec<Vec<(GateId, u8)>> = vec![Vec::new(); self.nets.len()];
        let mut dff_d: Vec<Vec<DffId>> = vec![Vec::new(); self.nets.len()];
        let mut po: Vec<bool> = vec![false; self.nets.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            for (pin, net) in g.inputs().iter().enumerate() {
                gate_pins[net.index()].push((GateId(gi as u32), pin as u8));
            }
        }
        for (fi, ff) in self.dffs.iter().enumerate() {
            dff_d[ff.d.index()].push(DffId(fi as u32));
        }
        for (_, net) in &self.outputs {
            po[net.index()] = true;
        }
        Fanout {
            gate_pins,
            dff_d,
            po,
        }
    }

    /// Checks all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found: floating nets, dangling
    /// outputs or combinational loops.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (i, net) in self.nets.iter().enumerate() {
            if matches!(net.driver, NetDriver::Floating) {
                return Err(NetlistError::FloatingNet(NetId(i as u32)));
            }
        }
        for (_, net) in &self.outputs {
            if net.index() >= self.nets.len() {
                return Err(NetlistError::DanglingOutput(*net));
            }
        }
        // Topological order must cover every gate; otherwise there is a loop.
        if self.topo.len() != self.gates.len() {
            let in_topo: Vec<bool> = {
                let mut v = vec![false; self.gates.len()];
                for g in &self.topo {
                    v[g.index()] = true;
                }
                v
            };
            let offending = self
                .gates
                .iter()
                .enumerate()
                .find(|(i, _)| !in_topo[*i])
                .map(|(_, g)| g.output())
                .expect("topo shorter than gates implies a missing gate");
            return Err(NetlistError::CombinationalLoop(offending));
        }
        Ok(())
    }

    /// Computes (and stores) a topological order of the combinational gates.
    ///
    /// Returns `false` if a combinational cycle prevents a complete order.
    pub(crate) fn compute_topo(&mut self) -> bool {
        let mut indegree: Vec<u32> = vec![0; self.gates.len()];
        // net -> consuming gates
        let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); self.nets.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            for inp in g.inputs() {
                consumers[inp.index()].push(gi as u32);
            }
        }
        // A gate's indegree counts inputs driven by other gates only;
        // PI/DffQ/consts are sequential or external sources.
        for (gi, g) in self.gates.iter().enumerate() {
            for inp in g.inputs() {
                if matches!(self.nets[inp.index()].driver, NetDriver::Gate(_)) {
                    indegree[gi] += 1;
                }
            }
        }
        let mut queue: Vec<u32> = indegree
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == 0)
            .map(|(i, _)| i as u32)
            .collect();
        let mut topo = Vec::with_capacity(self.gates.len());
        let mut head = 0;
        while head < queue.len() {
            let gi = queue[head];
            head += 1;
            topo.push(GateId(gi));
            let out = self.gates[gi as usize].output();
            for &ci in &consumers[out.index()] {
                indegree[ci as usize] -= 1;
                if indegree[ci as usize] == 0 {
                    queue.push(ci);
                }
            }
        }
        let complete = topo.len() == self.gates.len();
        self.topo = topo;
        complete
    }

    /// Renders a compact human-readable dump (for debugging and goldens).
    pub fn dump(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "design {} ({} nets, {} gates, {} ffs)\n",
            self.name,
            self.nets.len(),
            self.gates.len(),
            self.dffs.len()
        ));
        for (i, net) in self.inputs.iter().enumerate() {
            s.push_str(&format!(
                "  input  {} {}\n",
                net,
                self.nets[net.index()].name.as_deref().unwrap_or("?"),
            ));
            let _ = i;
        }
        for (name, net) in &self.outputs {
            s.push_str(&format!("  output {net} {name}\n"));
        }
        for (i, g) in self.gates.iter().enumerate() {
            s.push_str(&format!(
                "  g{} {} {:?} -> {}\n",
                i,
                g.kind(),
                g.inputs(),
                g.output()
            ));
        }
        for (i, ff) in self.dffs.iter().enumerate() {
            s.push_str(&format!("  ff{} {} d={} q={}\n", i, ff.name, ff.d, ff.q));
        }
        s
    }

    /// Builds a name → net map for all named nets.
    pub fn named_nets(&self) -> HashMap<String, NetId> {
        self.nets
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.name.clone().map(|s| (s, NetId(i as u32))))
            .collect()
    }
}

/// Fanout (reader) table of a netlist; see [`Netlist::fanout_table`].
#[derive(Debug, Clone)]
pub struct Fanout {
    /// For each net: the `(gate, pin)` pairs reading it.
    pub gate_pins: Vec<Vec<(GateId, u8)>>,
    /// For each net: the flip-flops whose D input reads it.
    pub dff_d: Vec<Vec<DffId>>,
    /// For each net: whether it is a primary output.
    pub po: Vec<bool>,
}

impl Fanout {
    /// Total number of readers (gate pins + D pins + PO taps) of `net`.
    pub fn reader_count(&self, net: NetId) -> usize {
        self.gate_pins[net.index()].len()
            + self.dff_d[net.index()].len()
            + usize::from(self.po[net.index()])
    }
}

pub use self::DffId as FlipFlopId;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        b.finish()
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn find_net_by_name() {
        let nl = tiny();
        assert!(nl.find_net("a").is_some());
        assert!(nl.find_net("zz").is_none());
    }

    #[test]
    fn fanout_counts_readers() {
        let mut b = NetlistBuilder::new("fan");
        let a = b.input("a");
        let x = b.not(a);
        let y = b.and2(a, x);
        b.output("y", y);
        let nl = b.finish();
        let f = nl.fanout_table();
        // `a` feeds the NOT and pin 0 of the AND.
        assert_eq!(f.reader_count(nl.find_net("a").unwrap()), 2);
    }

    #[test]
    fn area_positive_and_additive() {
        let nl = tiny();
        assert!(nl.area() > 0.0);
    }

    #[test]
    fn dump_mentions_design_name() {
        assert!(tiny().dump().contains("design tiny"));
    }
}
