//! Primitive gate types of the structural netlist.

use std::fmt;

use crate::netlist::NetId;

/// Identifier of a gate inside a [`crate::Netlist`].
///
/// Gate ids are dense indices assigned in creation order; they are stable
/// for the lifetime of the netlist (gates are never removed, only added by
/// transformations such as scan insertion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// Returns the dense index of this gate.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `GateId` from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        GateId(index as u32)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The fixed-arity combinational primitives supported by the netlist.
///
/// Arities are deliberately fixed (two-input logic, three-input mux) so
/// that fault enumeration, controllability analysis and PODEM backtrace
/// stay simple and predictable; the [`crate::NetlistBuilder`] provides
/// reduction trees for wider operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Single-input buffer.
    Buf,
    /// Single-input inverter.
    Not,
    /// Two-input AND.
    And,
    /// Two-input OR.
    Or,
    /// Two-input NAND.
    Nand,
    /// Two-input NOR.
    Nor,
    /// Two-input XOR.
    Xor,
    /// Two-input XNOR.
    Xnor,
    /// Two-to-one multiplexer; inputs are ordered `[sel, a, b]` and the
    /// output is `a` when `sel == 0`, `b` when `sel == 1`.
    Mux2,
}

impl GateKind {
    /// Number of input pins of this gate kind.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Buf | GateKind::Not => 1,
            GateKind::Mux2 => 3,
            _ => 2,
        }
    }

    /// Evaluates the gate on bit-parallel 64-wide words.
    #[inline]
    pub fn eval(self, inputs: &[u64]) -> u64 {
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs[0] & inputs[1],
            GateKind::Or => inputs[0] | inputs[1],
            GateKind::Nand => !(inputs[0] & inputs[1]),
            GateKind::Nor => !(inputs[0] | inputs[1]),
            GateKind::Xor => inputs[0] ^ inputs[1],
            GateKind::Xnor => !(inputs[0] ^ inputs[1]),
            GateKind::Mux2 => (!inputs[0] & inputs[1]) | (inputs[0] & inputs[2]),
        }
    }

    /// Short lowercase mnemonic used in debug dumps.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux2 => "mux2",
        }
    }

    /// All gate kinds, handy for tests that sweep the library.
    pub const ALL: [GateKind; 9] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Mux2,
    ];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One gate instance: a primitive kind, its input nets and its output net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    kind: GateKind,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Gate {
    pub(crate) fn new(kind: GateKind, inputs: Vec<NetId>, output: NetId) -> Self {
        debug_assert_eq!(kind.arity(), inputs.len(), "gate arity mismatch");
        Gate {
            kind,
            inputs,
            output,
        }
    }

    /// The primitive implemented by this gate.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Input nets in pin order.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The single output net.
    #[inline]
    pub fn output(&self) -> NetId {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities_match_eval_expectations() {
        for kind in GateKind::ALL {
            let n = kind.arity();
            assert!((1..=3).contains(&n), "{kind} arity {n} out of range");
        }
    }

    #[test]
    fn eval_truth_tables() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        assert_eq!(GateKind::And.eval(&[a, b]) & 0xF, 0b1000);
        assert_eq!(GateKind::Or.eval(&[a, b]) & 0xF, 0b1110);
        assert_eq!(GateKind::Nand.eval(&[a, b]) & 0xF, 0b0111);
        assert_eq!(GateKind::Nor.eval(&[a, b]) & 0xF, 0b0001);
        assert_eq!(GateKind::Xor.eval(&[a, b]) & 0xF, 0b0110);
        assert_eq!(GateKind::Xnor.eval(&[a, b]) & 0xF, 0b1001);
        assert_eq!(GateKind::Not.eval(&[a]) & 0xF, 0b0011);
        assert_eq!(GateKind::Buf.eval(&[a]) & 0xF, 0b1100);
    }

    #[test]
    fn mux_selects_b_when_sel_high() {
        let sel = 0b10u64;
        let a = 0b01u64;
        let b = 0b10u64;
        // Pattern 0: sel=0 -> a bit0 = 1. Pattern 1: sel=1 -> b bit1 = 1.
        assert_eq!(GateKind::Mux2.eval(&[sel, a, b]) & 0b11, 0b11);
    }

    #[test]
    fn display_is_mnemonic() {
        assert_eq!(GateKind::Nand.to_string(), "nand");
        assert_eq!(GateId(7).to_string(), "g7");
    }
}
