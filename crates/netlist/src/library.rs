//! A miniature standard-cell library: area in NAND2 gate equivalents and
//! propagation delays in normalised gate delays.
//!
//! The absolute values are representative of a late-1990s standard-cell
//! library (the paper's components were synthesised with Synopsys against
//! such a library); only ratios matter for the exploration, since area and
//! delay enter the cost model as relative axes.

use crate::gate::GateKind;

/// Area of one D flip-flop, in NAND2 equivalents.
pub const DFF_AREA: f64 = 4.5;

/// Area of one scan D flip-flop (mux-scan style), in NAND2 equivalents.
pub const SCAN_DFF_AREA: f64 = 5.75;

/// Clock-to-Q delay of a flip-flop, in normalised gate delays.
pub const DFF_CLK_TO_Q: f64 = 1.5;

/// Setup time of a flip-flop, in normalised gate delays.
pub const DFF_SETUP: f64 = 0.5;

/// Incremental propagation delay a driving cell pays per fanout load
/// beyond the first, in normalised gate delays.
///
/// The unit-delay numbers of [`gate_delay`] assume a fanout-of-one
/// environment; heavily loaded nets (decoder roots, shared enables, bus
/// fabric) slow their driver roughly linearly in CMOS, and this linear
/// coefficient is the classic logical-effort first-order model of that.
/// Used only by the *loaded* timing analysis
/// ([`crate::timing::loaded_arrival_times`]); the table-fidelity
/// [`crate::timing::analyze`] stays on pure unit delays.
pub const FANOUT_DELAY_PER_LOAD: f64 = 0.15;

/// Area of the given combinational gate, in NAND2 equivalents.
pub fn gate_area(kind: GateKind) -> f64 {
    match kind {
        GateKind::Buf => 0.75,
        GateKind::Not => 0.5,
        GateKind::And => 1.25,
        GateKind::Or => 1.25,
        GateKind::Nand => 1.0,
        GateKind::Nor => 1.0,
        GateKind::Xor => 2.5,
        GateKind::Xnor => 2.5,
        GateKind::Mux2 => 2.25,
    }
}

/// Propagation delay of the given gate, in normalised gate delays.
pub fn gate_delay(kind: GateKind) -> f64 {
    match kind {
        GateKind::Buf => 0.6,
        GateKind::Not => 0.4,
        GateKind::And => 1.1,
        GateKind::Or => 1.1,
        GateKind::Nand => 1.0,
        GateKind::Nor => 1.0,
        GateKind::Xor => 1.8,
        GateKind::Xnor => 1.8,
        GateKind::Mux2 => 1.4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand_is_the_unit() {
        assert_eq!(gate_area(GateKind::Nand), 1.0);
        assert_eq!(gate_delay(GateKind::Nand), 1.0);
    }

    #[test]
    fn all_cells_have_positive_cost() {
        for kind in GateKind::ALL {
            assert!(gate_area(kind) > 0.0, "{kind}");
            assert!(gate_delay(kind) > 0.0, "{kind}");
        }
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(DFF_AREA > 0.0);
            assert!(SCAN_DFF_AREA > DFF_AREA, "scan FF must cost extra");
        }
    }

    #[test]
    fn xor_costs_more_than_nand() {
        assert!(gate_area(GateKind::Xor) > gate_area(GateKind::Nand));
        assert!(gate_delay(GateKind::Xor) > gate_delay(GateKind::Nand));
    }
}
