//! Incremental construction of [`Netlist`]s, with word-level helpers used
//! by the datapath component generators.

use crate::gate::{Gate, GateId, GateKind};
use crate::netlist::{Dff, DffId, Net, NetDriver, NetId, Netlist};

/// A multi-bit signal: LSB first.
pub type Word = Vec<NetId>;

/// Sentinel D connection for feedback flip-flops awaiting `set_dff_d`.
const PENDING_D: NetId = NetId(u32::MAX);

/// Structural errors detected when finalising a builder.
///
/// Returned by [`NetlistBuilder::try_finish`]; [`NetlistBuilder::finish`]
/// panics with the same message instead, because the shipped component
/// generators are expected to always produce well-formed logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A flip-flop declared with [`NetlistBuilder::dff_feedback`] was never
    /// connected with [`NetlistBuilder::set_dff_d`], leaving the
    /// `PENDING_D` sentinel in place.
    UnpatchedFeedback {
        /// Name of the offending flip-flop.
        flop: String,
    },
    /// The combinational gate graph contains a cycle.
    CombinationalLoop {
        /// Name of the design being built.
        design: String,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnpatchedFeedback { flop } => {
                write!(f, "feedback flip-flop {flop} never connected")
            }
            BuildError::CombinationalLoop { design } => {
                write!(f, "combinational loop in generated netlist {design}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A snapshot of a builder's extent, taken with [`NetlistBuilder::mark`]
/// and restored with [`NetlistBuilder::rewind`].
///
/// Everything the builder creates is appended to dense vectors, so a mark
/// is just the set of vector lengths (plus the lazily-created constant
/// nets). Rewinding truncates back to those lengths, which makes
/// incremental re-elaboration of a netlist suffix deterministic: after a
/// rewind, the builder hands out exactly the same ids a fresh build would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuilderMark {
    nets: usize,
    gates: usize,
    dffs: usize,
    inputs: usize,
    outputs: usize,
    const0: Option<NetId>,
    const1: Option<NetId>,
}

/// Builder for [`Netlist`] values.
///
/// The builder hands out [`NetId`]s as logic is created; `finish` computes
/// the topological order and asserts the structural invariants.
///
/// # Examples
///
/// ```
/// use tta_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("add1");
/// let a = b.input_word("a", 4);
/// let bw = b.input_word("b", 4);
/// let zero = b.const0();
/// let (sum, cout) = b.ripple_add(&a, &bw, zero);
/// b.output_word("sum", &sum);
/// b.output("cout", cout);
/// let nl = b.finish();
/// assert_eq!(nl.primary_inputs().len(), 8);
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
    const0: Option<NetId>,
    const1: Option<NetId>,
}

impl NetlistBuilder {
    /// Creates an empty builder for a design called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            nets: Vec::new(),
            gates: Vec::new(),
            dffs: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            const0: None,
            const1: None,
        }
    }

    /// Renames the design without touching its contents (the incremental
    /// elaborator reuses one builder across differently-named points).
    pub(crate) fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    fn fresh_net(&mut self, driver: NetDriver, name: Option<String>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { driver, name });
        id
    }

    /// Declares a named single-bit primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let pos = self.inputs.len() as u32;
        let id = self.fresh_net(NetDriver::PrimaryInput(pos), Some(name.into()));
        self.inputs.push(id);
        id
    }

    /// Declares a `width`-bit primary input word named `name[i]`.
    pub fn input_word(&mut self, name: &str, width: usize) -> Word {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// Marks `net` as a primary output called `name`.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Marks a whole word as primary outputs `name[i]`.
    pub fn output_word(&mut self, name: &str, word: &[NetId]) {
        for (i, n) in word.iter().enumerate() {
            self.output(format!("{name}[{i}]"), *n);
        }
    }

    /// The constant-0 net (created on first use).
    pub fn const0(&mut self) -> NetId {
        if let Some(c) = self.const0 {
            return c;
        }
        let c = self.fresh_net(NetDriver::Const0, Some("const0".into()));
        self.const0 = Some(c);
        c
    }

    /// The constant-1 net (created on first use).
    pub fn const1(&mut self) -> NetId {
        if let Some(c) = self.const1 {
            return c;
        }
        let c = self.fresh_net(NetDriver::Const1, Some("const1".into()));
        self.const1 = Some(c);
        c
    }

    /// Adds a gate of `kind` reading `inputs`, returning its output net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the gate arity.
    pub fn gate(&mut self, kind: GateKind, inputs: &[NetId]) -> NetId {
        assert_eq!(
            kind.arity(),
            inputs.len(),
            "{kind} expects {} inputs",
            kind.arity()
        );
        let gid = GateId(self.gates.len() as u32);
        let out = self.fresh_net(NetDriver::Gate(gid), None);
        self.gates.push(Gate::new(kind, inputs.to_vec(), out));
        out
    }

    /// Two-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::And, &[a, b])
    }

    /// Two-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Or, &[a, b])
    }

    /// Two-input NAND.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Nand, &[a, b])
    }

    /// Two-input NOR.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Nor, &[a, b])
    }

    /// Two-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Xor, &[a, b])
    }

    /// Two-input XNOR.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Xnor, &[a, b])
    }

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate(GateKind::Not, &[a])
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.gate(GateKind::Buf, &[a])
    }

    /// Two-to-one mux: returns `a` when `sel == 0`, `b` when `sel == 1`.
    pub fn mux2(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Mux2, &[sel, a, b])
    }

    /// D flip-flop; returns the Q net.
    pub fn dff(&mut self, name: impl Into<String>, d: NetId) -> NetId {
        let fid = DffId(self.dffs.len() as u32);
        let name = name.into();
        let q = self.fresh_net(NetDriver::DffQ(fid), Some(format!("{name}.q")));
        self.dffs.push(Dff { d, q, name });
        q
    }

    /// Registers a whole word; returns the Q word.
    pub fn dff_word(&mut self, name: &str, d: &[NetId]) -> Word {
        d.iter()
            .enumerate()
            .map(|(i, &bit)| self.dff(format!("{name}[{i}]"), bit))
            .collect()
    }

    /// Declares a flip-flop whose D input will be connected later with
    /// [`Self::set_dff_d`] — required for sequential feedback (counters,
    /// FSM state registers). Returns the Q net and the flip-flop id.
    pub fn dff_feedback(&mut self, name: impl Into<String>) -> (NetId, DffId) {
        let fid = DffId(self.dffs.len() as u32);
        let name = name.into();
        let q = self.fresh_net(NetDriver::DffQ(fid), Some(format!("{name}.q")));
        self.dffs.push(Dff {
            d: PENDING_D,
            q,
            name,
        });
        (q, fid)
    }

    /// Declares a word of feedback flip-flops; connect with
    /// [`Self::set_dff_word_d`].
    pub fn dff_word_feedback(&mut self, name: &str, width: usize) -> (Word, Vec<DffId>) {
        let mut q = Vec::with_capacity(width);
        let mut ids = Vec::with_capacity(width);
        for i in 0..width {
            let (qi, fi) = self.dff_feedback(format!("{name}[{i}]"));
            q.push(qi);
            ids.push(fi);
        }
        (q, ids)
    }

    /// Connects the D input of a feedback flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if the flip-flop was already connected.
    pub fn set_dff_d(&mut self, id: DffId, d: NetId) {
        let ff = &mut self.dffs[id.index()];
        assert_eq!(ff.d, PENDING_D, "flip-flop {} already connected", ff.name);
        ff.d = d;
    }

    /// Connects the D inputs of a feedback flip-flop word.
    pub fn set_dff_word_d(&mut self, ids: &[DffId], d: &[NetId]) {
        assert_eq!(ids.len(), d.len(), "word width mismatch");
        for (&id, &bit) in ids.iter().zip(d) {
            self.set_dff_d(id, bit);
        }
    }

    // ---- word-level combinational helpers -------------------------------

    /// Bitwise binary op over two equal-width words.
    fn zipmap(&mut self, kind: GateKind, a: &[NetId], b: &[NetId]) -> Word {
        assert_eq!(a.len(), b.len(), "word width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.gate(kind, &[x, y]))
            .collect()
    }

    /// Bitwise AND of two words.
    pub fn and_word(&mut self, a: &[NetId], b: &[NetId]) -> Word {
        self.zipmap(GateKind::And, a, b)
    }

    /// Bitwise OR of two words.
    pub fn or_word(&mut self, a: &[NetId], b: &[NetId]) -> Word {
        self.zipmap(GateKind::Or, a, b)
    }

    /// Bitwise XOR of two words.
    pub fn xor_word(&mut self, a: &[NetId], b: &[NetId]) -> Word {
        self.zipmap(GateKind::Xor, a, b)
    }

    /// Bitwise NOT of a word.
    pub fn not_word(&mut self, a: &[NetId]) -> Word {
        a.iter().map(|&x| self.not(x)).collect()
    }

    /// Word-level mux: per-bit [`Self::mux2`] with a shared select.
    pub fn mux_word(&mut self, sel: NetId, a: &[NetId], b: &[NetId]) -> Word {
        assert_eq!(a.len(), b.len(), "word width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux2(sel, x, y))
            .collect()
    }

    /// OR-reduction of a word (balanced tree), 1 if any bit set.
    pub fn or_reduce(&mut self, word: &[NetId]) -> NetId {
        self.reduce(GateKind::Or, word)
    }

    /// AND-reduction of a word (balanced tree), 1 if all bits set.
    pub fn and_reduce(&mut self, word: &[NetId]) -> NetId {
        self.reduce(GateKind::And, word)
    }

    /// XOR-reduction (parity) of a word.
    pub fn xor_reduce(&mut self, word: &[NetId]) -> NetId {
        self.reduce(GateKind::Xor, word)
    }

    fn reduce(&mut self, kind: GateKind, word: &[NetId]) -> NetId {
        assert!(!word.is_empty(), "cannot reduce an empty word");
        let mut layer: Vec<NetId> = word.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate(kind, &[pair[0], pair[1]]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Full adder on three bits; returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let axb = self.xor2(a, b);
        let sum = self.xor2(axb, cin);
        let ab = self.and2(a, b);
        let cx = self.and2(axb, cin);
        let cout = self.or2(ab, cx);
        (sum, cout)
    }

    /// Ripple-carry adder; returns `(sum, carry_out)`.
    pub fn ripple_add(&mut self, a: &[NetId], b: &[NetId], cin: NetId) -> (Word, NetId) {
        assert_eq!(a.len(), b.len(), "word width mismatch");
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(x, y, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Ripple-carry adder modulo `2^width`: like [`Self::ripple_add`] but
    /// the final carry is never materialised, so a consumer that wraps
    /// (an ALU datapath) does not leave dead carry gates behind.
    pub fn ripple_add_wrap(&mut self, a: &[NetId], b: &[NetId], cin: NetId) -> Word {
        assert_eq!(a.len(), b.len(), "word width mismatch");
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            if i + 1 == a.len() {
                // Top bit: only the sum is observable.
                let axb = self.xor2(x, y);
                sum.push(self.xor2(axb, carry));
            } else {
                let (s, c) = self.full_adder(x, y, carry);
                sum.push(s);
                carry = c;
            }
        }
        sum
    }

    /// Adder/subtractor: computes `a + b` when `sub == 0` and `a - b`
    /// (two's complement) when `sub == 1`. Returns `(result, carry_out)`.
    pub fn add_sub(&mut self, a: &[NetId], b: &[NetId], sub: NetId) -> (Word, NetId) {
        let b_adj: Word = b.iter().map(|&y| self.xor2(y, sub)).collect();
        self.ripple_add(a, &b_adj, sub)
    }

    /// Adder/subtractor modulo `2^width` — [`Self::add_sub`] without the
    /// dead final-carry gates.
    pub fn add_sub_wrap(&mut self, a: &[NetId], b: &[NetId], sub: NetId) -> Word {
        let b_adj: Word = b.iter().map(|&y| self.xor2(y, sub)).collect();
        self.ripple_add_wrap(a, &b_adj, sub)
    }

    /// Equality comparator over two words.
    pub fn eq_word(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let diff = self.zipmap(GateKind::Xnor, a, b);
        self.and_reduce(&diff)
    }

    /// Logical barrel shifter. `amount` is LSB-first; `left` selects the
    /// direction (shift left when 1); vacated bits are zero-filled.
    pub fn barrel_shift(&mut self, value: &[NetId], amount: &[NetId], left: NetId) -> Word {
        let zero = self.const0();
        // Shift-right network with optional pre/post reversal to get left
        // shifts from the same hardware, as in typical ALU shifters.
        let reversed: Word = value.iter().rev().copied().collect();
        let mut cur = self.mux_word(left, value, &reversed);
        for (stage, &abit) in amount.iter().enumerate() {
            let k = 1usize << stage;
            if k >= cur.len() {
                // Shifting by >= width zeroes everything if the bit is set.
                let zeros: Word = vec![zero; cur.len()];
                cur = self.mux_word(abit, &cur, &zeros);
                continue;
            }
            let mut shifted: Word = Vec::with_capacity(cur.len());
            for i in 0..cur.len() {
                shifted.push(if i + k < cur.len() { cur[i + k] } else { zero });
            }
            cur = self.mux_word(abit, &cur, &shifted);
        }
        let cur_rev: Word = cur.iter().rev().copied().collect();
        self.mux_word(left, &cur, &cur_rev)
    }

    /// Incrementer: `a + 1`; returns `(sum, carry_out)`.
    pub fn increment(&mut self, a: &[NetId]) -> (Word, NetId) {
        let mut carry = self.const1();
        let mut out = Vec::with_capacity(a.len());
        for &bit in a {
            out.push(self.xor2(bit, carry));
            carry = self.and2(bit, carry);
        }
        (out, carry)
    }

    /// Incrementer modulo `2^width`: [`Self::increment`] without the dead
    /// final-carry gate.
    pub fn increment_wrap(&mut self, a: &[NetId]) -> Word {
        let mut carry = self.const1();
        let mut out = Vec::with_capacity(a.len());
        for (i, &bit) in a.iter().enumerate() {
            out.push(self.xor2(bit, carry));
            if i + 1 != a.len() {
                carry = self.and2(bit, carry);
            }
        }
        out
    }

    /// One-hot decoder: `sel` (LSB first) to `2^sel.len()` one-hot lines.
    pub fn decoder(&mut self, sel: &[NetId]) -> Word {
        self.decoder_n(sel, 1usize << sel.len())
    }

    /// Truncated one-hot decoder: only the first `n` lines are built, so a
    /// consumer with fewer than `2^sel.len()` targets (a 12-register file)
    /// leaves no dead match gates behind.
    pub fn decoder_n(&mut self, sel: &[NetId], n: usize) -> Word {
        assert!(n <= 1usize << sel.len(), "decoder line count out of range");
        let sel_n: Word = self.not_word(sel);
        let mut lines = Vec::with_capacity(n);
        for code in 0..n {
            let bits: Vec<NetId> = (0..sel.len())
                .map(|b| if code >> b & 1 == 1 { sel[b] } else { sel_n[b] })
                .collect();
            lines.push(self.and_reduce(&bits));
        }
        lines
    }

    /// N-way word multiplexer via a mux tree; `sel` is LSB-first and
    /// `choices.len()` must equal `2^sel.len()`.
    pub fn mux_tree(&mut self, sel: &[NetId], choices: &[Word]) -> Word {
        assert_eq!(
            choices.len(),
            1usize << sel.len(),
            "mux tree needs 2^sel choices"
        );
        let mut layer: Vec<Word> = choices.to_vec();
        for &s in sel {
            let mut next = Vec::with_capacity(layer.len() / 2);
            for pair in layer.chunks(2) {
                next.push(self.mux_word(s, &pair[0], &pair[1]));
            }
            layer = next;
        }
        layer.pop().expect("mux tree reduces to one word")
    }

    /// Takes a snapshot of the builder's current extent.
    ///
    /// Pair with [`Self::rewind`] to discard everything created after the
    /// mark — the incremental elaborator uses this to keep the unchanged
    /// prefix of a netlist while rebuilding only the suffix.
    pub fn mark(&self) -> BuilderMark {
        BuilderMark {
            nets: self.nets.len(),
            gates: self.gates.len(),
            dffs: self.dffs.len(),
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            const0: self.const0,
            const1: self.const1,
        }
    }

    /// Discards every net, gate, flip-flop and port created after `mark`.
    ///
    /// # Panics
    ///
    /// Panics if `mark` does not describe a prefix of this builder (i.e.
    /// it was taken from a different builder or the builder has already
    /// been rewound past it).
    pub fn rewind(&mut self, mark: BuilderMark) {
        assert!(
            mark.nets <= self.nets.len()
                && mark.gates <= self.gates.len()
                && mark.dffs <= self.dffs.len()
                && mark.inputs <= self.inputs.len()
                && mark.outputs <= self.outputs.len(),
            "rewind mark is not a prefix of this builder"
        );
        self.nets.truncate(mark.nets);
        self.gates.truncate(mark.gates);
        self.dffs.truncate(mark.dffs);
        self.inputs.truncate(mark.inputs);
        self.outputs.truncate(mark.outputs);
        self.const0 = mark.const0;
        self.const1 = mark.const1;
    }

    /// Finalises the current contents into a [`Netlist`] without consuming
    /// the builder.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if a feedback flip-flop was never connected
    /// or the combinational graph contains a cycle. The builder itself is
    /// left untouched either way, so an incremental caller can keep
    /// mutating it.
    pub fn try_finish(&self) -> Result<Netlist, BuildError> {
        for ff in &self.dffs {
            if ff.d == PENDING_D {
                return Err(BuildError::UnpatchedFeedback {
                    flop: ff.name.clone(),
                });
            }
        }
        let mut nl = Netlist {
            name: self.name.clone(),
            nets: self.nets.clone(),
            gates: self.gates.clone(),
            dffs: self.dffs.clone(),
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            topo: Vec::new(),
        };
        if !nl.compute_topo() {
            return Err(BuildError::CombinationalLoop {
                design: nl.name().to_string(),
            });
        }
        debug_assert_eq!(nl.validate(), Ok(()));
        Ok(nl)
    }

    /// Finalises the netlist.
    ///
    /// # Panics
    ///
    /// Panics if the combinational graph contains a cycle or a feedback
    /// flip-flop was never connected — generators are expected to produce
    /// well-formed logic, so either is a programming error, not an input
    /// error. Use [`Self::try_finish`] to get a structured [`BuildError`]
    /// instead.
    pub fn finish(self) -> Netlist {
        match self.try_finish() {
            Ok(nl) => nl,
            Err(e) => panic!("{e}"),
        }
    }

    /// The flip-flops declared so far that still await [`Self::set_dff_d`].
    ///
    /// The lint engine reports these as `UnpatchedFeedback` diagnostics
    /// when asked to inspect a builder mid-construction.
    pub fn pending_feedback(&self) -> Vec<String> {
        self.dffs
            .iter()
            .filter(|ff| ff.d == PENDING_D)
            .map(|ff| ff.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn ripple_adder_adds() {
        let mut b = NetlistBuilder::new("add4");
        let a = b.input_word("a", 4);
        let bw = b.input_word("b", 4);
        let z = b.const0();
        let (sum, cout) = b.ripple_add(&a, &bw, z);
        b.output_word("s", &sum);
        b.output("cout", cout);
        let nl = b.finish();
        let sim = Simulator::new(&nl);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let outs = sim.eval_words(&nl, &[("a", x), ("b", y)]);
                let s = outs["s"];
                let c = outs["cout"];
                assert_eq!(s, (x + y) & 0xF, "{x}+{y}");
                assert_eq!(c, (x + y) >> 4, "{x}+{y} carry");
            }
        }
    }

    #[test]
    fn add_sub_subtracts() {
        let mut b = NetlistBuilder::new("addsub");
        let a = b.input_word("a", 8);
        let bw = b.input_word("b", 8);
        let sub = b.input("sub");
        let (r, _) = b.add_sub(&a, &bw, sub);
        b.output_word("r", &r);
        let nl = b.finish();
        let sim = Simulator::new(&nl);
        let outs = sim.eval_words(&nl, &[("a", 100), ("b", 58), ("sub", 1)]);
        assert_eq!(outs["r"], 42);
        let outs = sim.eval_words(&nl, &[("a", 100), ("b", 58), ("sub", 0)]);
        assert_eq!(outs["r"], 158);
    }

    #[test]
    fn barrel_shifter_shifts_both_ways() {
        let mut b = NetlistBuilder::new("shift8");
        let v = b.input_word("v", 8);
        let amt = b.input_word("amt", 3);
        let left = b.input("left");
        let out = b.barrel_shift(&v, &amt, left);
        b.output_word("out", &out);
        let nl = b.finish();
        let sim = Simulator::new(&nl);
        for sh in 0..8u64 {
            let right = sim.eval_words(&nl, &[("v", 0xB7), ("amt", sh), ("left", 0)]);
            assert_eq!(right["out"], 0xB7 >> sh, "right shift {sh}");
            let leftr = sim.eval_words(&nl, &[("v", 0xB7), ("amt", sh), ("left", 1)]);
            assert_eq!(leftr["out"], (0xB7 << sh) & 0xFF, "left shift {sh}");
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut b = NetlistBuilder::new("dec");
        let sel = b.input_word("sel", 3);
        let lines = b.decoder(&sel);
        b.output_word("line", &lines);
        let nl = b.finish();
        let sim = Simulator::new(&nl);
        for s in 0..8u64 {
            let outs = sim.eval_words(&nl, &[("sel", s)]);
            assert_eq!(outs["line"], 1 << s, "sel={s}");
        }
    }

    #[test]
    fn mux_tree_selects() {
        let mut b = NetlistBuilder::new("mux4");
        let sel = b.input_word("sel", 2);
        let words: Vec<Word> = (0..4).map(|i| b.input_word(&format!("w{i}"), 4)).collect();
        let out = b.mux_tree(&sel, &words);
        b.output_word("out", &out);
        let nl = b.finish();
        let sim = Simulator::new(&nl);
        for s in 0..4u64 {
            let outs = sim.eval_words(
                &nl,
                &[("sel", s), ("w0", 1), ("w1", 3), ("w2", 7), ("w3", 15)],
            );
            assert_eq!(outs["out"], [1u64, 3, 7, 15][s as usize], "sel={s}");
        }
    }

    #[test]
    fn increment_wraps() {
        let mut b = NetlistBuilder::new("inc");
        let a = b.input_word("a", 4);
        let (s, c) = b.increment(&a);
        b.output_word("s", &s);
        b.output("c", c);
        let nl = b.finish();
        let sim = Simulator::new(&nl);
        let outs = sim.eval_words(&nl, &[("a", 15)]);
        assert_eq!(outs["s"], 0);
        assert_eq!(outs["c"], 1);
    }

    #[test]
    #[should_panic(expected = "word width mismatch")]
    fn mismatched_widths_panic() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input_word("a", 4);
        let c = b.input_word("b", 3);
        let _ = b.and_word(&a, &c);
    }

    #[test]
    fn unpatched_feedback_is_a_structured_error() {
        let mut b = NetlistBuilder::new("lonely");
        let (_q, _ff) = b.dff_feedback("state");
        assert_eq!(b.pending_feedback(), vec!["state".to_string()]);
        let err = b.try_finish().unwrap_err();
        assert_eq!(
            err,
            BuildError::UnpatchedFeedback {
                flop: "state".into()
            }
        );
        assert_eq!(err.to_string(), "feedback flip-flop state never connected");
    }

    #[test]
    #[should_panic(expected = "feedback flip-flop state never connected")]
    fn unpatched_feedback_still_panics_in_finish() {
        let mut b = NetlistBuilder::new("lonely");
        let (_q, _ff) = b.dff_feedback("state");
        let _ = b.finish();
    }

    #[test]
    fn try_finish_leaves_the_builder_usable() {
        let mut b = NetlistBuilder::new("keep");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let first = b.try_finish().unwrap();
        // The builder is still usable: extend it and finish again.
        let z = b.not(y);
        b.output("z", z);
        let second = b.try_finish().unwrap();
        assert_eq!(first.gate_count() + 1, second.gate_count());
        assert_eq!(second.primary_outputs().len(), 2);
    }

    #[test]
    fn rewind_restores_the_marked_prefix() {
        let mut b = NetlistBuilder::new("rw");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let mark = b.mark();
        let baseline = b.try_finish().unwrap().dump();
        // Grow past the mark (including a lazily-created constant)...
        let c1 = b.const1();
        let w = b.and2(y, c1);
        b.output("w", w);
        let _ = b.input("extra");
        assert_ne!(b.try_finish().unwrap().dump(), baseline);
        // ...then rewind: the builder is byte-identical to the snapshot.
        b.rewind(mark);
        assert_eq!(b.try_finish().unwrap().dump(), baseline);
        // And ids handed out after the rewind match a fresh build.
        let c1_again = b.const1();
        assert_eq!(c1, c1_again);
    }
}
