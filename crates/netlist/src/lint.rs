//! Structural lint: typed diagnostics over a gate-level netlist.
//!
//! [`Netlist::validate`] stops at the first invariant violation;
//! the lint engine instead sweeps the whole graph and reports *every*
//! finding, classified by [`LintKind`]. It also accepts netlists built
//! outside the [`crate::NetlistBuilder`] guard rails (via
//! [`Netlist::from_raw_parts`]), so frontends and tests can inspect
//! deliberately-broken designs without tripping panics.
//!
//! The shipped component generators and the per-point elaborator
//! ([`crate::elaborate()`]) are held to a zero-diagnostic bar in CI.

use std::fmt;

use crate::netlist::{NetDriver, NetId, Netlist};

/// Classification of one lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// The combinational gate graph contains a cycle.
    CombinationalLoop,
    /// A net has no driver at all.
    FloatingNet,
    /// A primary output references a net that does not exist.
    DanglingOutput,
    /// Two structural drivers (gate outputs / flip-flop Qs) claim one net,
    /// or a net's driver record disagrees with the claiming cell.
    MultiDriver,
    /// A feedback flip-flop's D input was never connected (the builder's
    /// `PENDING_D` sentinel escaped).
    UnpatchedFeedback,
    /// A gate from which no primary output is reachable, even through
    /// sequential elements — synthesis would sweep it away, so its area
    /// and test figures are phantom.
    DeadGate,
}

impl LintKind {
    /// Stable short code used in reports and CI greps.
    pub fn code(self) -> &'static str {
        match self {
            LintKind::CombinationalLoop => "comb-loop",
            LintKind::FloatingNet => "floating-net",
            LintKind::DanglingOutput => "dangling-output",
            LintKind::MultiDriver => "multi-driver",
            LintKind::UnpatchedFeedback => "unpatched-feedback",
            LintKind::DeadGate => "dead-gate",
        }
    }

    /// Every lint kind, in report order.
    pub const ALL: [LintKind; 6] = [
        LintKind::CombinationalLoop,
        LintKind::FloatingNet,
        LintKind::DanglingOutput,
        LintKind::MultiDriver,
        LintKind::UnpatchedFeedback,
        LintKind::DeadGate,
    ];
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct LintDiagnostic {
    /// What class of problem this is.
    pub kind: LintKind,
    /// Human-readable description.
    pub message: String,
    /// The net the finding anchors to, when one exists in the netlist.
    pub net: Option<NetId>,
}

impl fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.message)
    }
}

fn net_label(nl: &Netlist, net: NetId) -> String {
    if net.index() < nl.net_count() {
        match nl.net(net).name() {
            Some(name) => format!("{net} ({name})"),
            None => net.to_string(),
        }
    } else {
        net.to_string()
    }
}

/// Runs every lint pass and returns all findings, grouped by pass in
/// [`LintKind::ALL`] order and by index within a pass — the report is
/// deterministic for a given netlist.
pub fn lint(nl: &Netlist) -> Vec<LintDiagnostic> {
    let mut out = Vec::new();
    lint_loops(nl, &mut out);
    lint_floating(nl, &mut out);
    lint_dangling_outputs(nl, &mut out);
    lint_multi_driver(nl, &mut out);
    lint_unpatched_feedback(nl, &mut out);
    lint_dead_gates(nl, &mut out);
    out
}

fn lint_loops(nl: &Netlist, out: &mut Vec<LintDiagnostic>) {
    let in_cycle = nl.gate_count() - nl.topo_order().len();
    if in_cycle == 0 {
        return;
    }
    let mut in_topo = vec![false; nl.gate_count()];
    for g in nl.topo_order() {
        in_topo[g.index()] = true;
    }
    let witness = nl
        .gates()
        .iter()
        .enumerate()
        .find(|(i, _)| !in_topo[*i])
        .map(|(_, g)| g.output())
        .expect("incomplete topo implies a cyclic gate");
    out.push(LintDiagnostic {
        kind: LintKind::CombinationalLoop,
        message: format!(
            "combinational loop: {in_cycle} gate(s) mutually dependent, e.g. through net {}",
            net_label(nl, witness)
        ),
        net: Some(witness),
    });
}

fn lint_floating(nl: &Netlist, out: &mut Vec<LintDiagnostic>) {
    for (i, net) in nl.nets().iter().enumerate() {
        if matches!(net.driver(), NetDriver::Floating) {
            let id = NetId::from_index(i);
            out.push(LintDiagnostic {
                kind: LintKind::FloatingNet,
                message: format!("net {} has no driver", net_label(nl, id)),
                net: Some(id),
            });
        }
    }
}

fn lint_dangling_outputs(nl: &Netlist, out: &mut Vec<LintDiagnostic>) {
    for (name, net) in nl.primary_outputs() {
        if net.index() >= nl.net_count() {
            out.push(LintDiagnostic {
                kind: LintKind::DanglingOutput,
                message: format!("primary output {name} references nonexistent net {net}"),
                net: None,
            });
        }
    }
}

fn lint_multi_driver(nl: &Netlist, out: &mut Vec<LintDiagnostic>) {
    // Structural claims: every gate claims its output net, every flip-flop
    // claims its Q net. Exactly one claim per net, and the net's driver
    // record must point back at the claimant.
    let mut claims: Vec<Vec<String>> = vec![Vec::new(); nl.net_count()];
    for (gi, g) in nl.gates().iter().enumerate() {
        if g.output().index() < nl.net_count() {
            claims[g.output().index()].push(format!("gate g{gi} ({})", g.kind()));
        }
    }
    for (fi, ff) in nl.dffs().iter().enumerate() {
        if ff.q().index() < nl.net_count() {
            claims[ff.q().index()].push(format!("flip-flop ff{fi} ({})", ff.name()));
        }
    }
    for (i, net) in nl.nets().iter().enumerate() {
        let id = NetId::from_index(i);
        let c = &claims[i];
        if c.len() > 1 {
            out.push(LintDiagnostic {
                kind: LintKind::MultiDriver,
                message: format!(
                    "net {} is driven by {} cells: {}",
                    net_label(nl, id),
                    c.len(),
                    c.join(", ")
                ),
                net: Some(id),
            });
            continue;
        }
        // A single structural claim must agree with the driver record;
        // a claim on a PI/constant net is also a conflict.
        let consistent = match net.driver() {
            NetDriver::Gate(g) => {
                c.len() == 1 && nl.gates()[g.index()].output() == id && {
                    // the claim must be this very gate
                    c[0].starts_with(&format!("gate g{}", g.index()))
                }
            }
            NetDriver::DffQ(f) => {
                c.len() == 1
                    && nl.dffs()[f.index()].q() == id
                    && c[0].starts_with(&format!("flip-flop ff{}", f.index()))
            }
            _ => c.is_empty(),
        };
        if !consistent && !c.is_empty() {
            out.push(LintDiagnostic {
                kind: LintKind::MultiDriver,
                message: format!(
                    "net {} driver record disagrees with claiming cell {}",
                    net_label(nl, id),
                    c[0]
                ),
                net: Some(id),
            });
        }
    }
}

fn lint_unpatched_feedback(nl: &Netlist, out: &mut Vec<LintDiagnostic>) {
    for (fi, ff) in nl.dffs().iter().enumerate() {
        if ff.d().index() >= nl.net_count() {
            out.push(LintDiagnostic {
                kind: LintKind::UnpatchedFeedback,
                message: format!(
                    "flip-flop ff{fi} ({}) has an unconnected feedback D input",
                    ff.name()
                ),
                net: None,
            });
        }
    }
}

fn lint_dead_gates(nl: &Netlist, out: &mut Vec<LintDiagnostic>) {
    // Backward reachability from the primary outputs, crossing flip-flops
    // from Q to D: anything not reached observably never matters.
    let mut live_net = vec![false; nl.net_count()];
    let mut stack: Vec<NetId> = nl
        .primary_outputs()
        .iter()
        .map(|(_, n)| *n)
        .filter(|n| n.index() < nl.net_count())
        .collect();
    while let Some(net) = stack.pop() {
        if live_net[net.index()] {
            continue;
        }
        live_net[net.index()] = true;
        match nl.net(net).driver() {
            NetDriver::Gate(g) => {
                for &inp in nl.gates()[g.index()].inputs() {
                    if inp.index() < nl.net_count() && !live_net[inp.index()] {
                        stack.push(inp);
                    }
                }
            }
            NetDriver::DffQ(f) => {
                let d = nl.dffs()[f.index()].d();
                if d.index() < nl.net_count() && !live_net[d.index()] {
                    stack.push(d);
                }
            }
            _ => {}
        }
    }
    for (gi, g) in nl.gates().iter().enumerate() {
        let dead = g.output().index() >= nl.net_count() || !live_net[g.output().index()];
        if dead {
            out.push(LintDiagnostic {
                kind: LintKind::DeadGate,
                message: format!(
                    "gate g{gi} ({}) cannot reach any primary output via {}",
                    g.kind(),
                    net_label(nl, g.output())
                ),
                net: Some(g.output()),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::gate::Gate;
    use crate::netlist::{Dff, Net};
    use crate::GateKind;

    fn clean() -> Netlist {
        let mut b = NetlistBuilder::new("clean");
        let a = b.input("a");
        let c = b.input("b");
        let q = b.dff("r", c);
        let y = b.and2(a, q);
        b.output("y", y);
        b.finish()
    }

    fn kinds(diags: &[LintDiagnostic]) -> Vec<LintKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn clean_netlist_has_no_findings() {
        assert_eq!(lint(&clean()), Vec::new());
    }

    #[test]
    fn detects_floating_net() {
        let (name, mut nets, gates, dffs, inputs, outputs) = clean().into_raw_parts();
        nets.push(Net {
            driver: NetDriver::Floating,
            name: Some("orphan".into()),
        });
        let nl = Netlist::from_raw_parts(name, nets, gates, dffs, inputs, outputs);
        let diags = lint(&nl);
        assert!(kinds(&diags).contains(&LintKind::FloatingNet), "{diags:?}");
        assert!(diags[0].message.contains("orphan"), "{diags:?}");
    }

    #[test]
    fn detects_dangling_output() {
        let (name, nets, gates, dffs, inputs, mut outputs) = clean().into_raw_parts();
        outputs.push(("ghost".into(), NetId::from_index(999)));
        let nl = Netlist::from_raw_parts(name, nets, gates, dffs, inputs, outputs);
        let diags = lint(&nl);
        assert!(
            kinds(&diags).contains(&LintKind::DanglingOutput),
            "{diags:?}"
        );
    }

    #[test]
    fn detects_multi_driver() {
        let (name, nets, mut gates, dffs, inputs, outputs) = clean().into_raw_parts();
        // A second gate claiming the first gate's output net.
        let victim = gates[0].output();
        let ins = [gates[0].inputs()[0], gates[0].inputs()[1]];
        gates.push(Gate::new(GateKind::Or, ins.to_vec(), victim));
        let nl = Netlist::from_raw_parts(name, nets, gates, dffs, inputs, outputs);
        let diags = lint(&nl);
        assert!(kinds(&diags).contains(&LintKind::MultiDriver), "{diags:?}");
    }

    #[test]
    fn detects_unpatched_feedback() {
        let mut b = NetlistBuilder::new("pending");
        let a = b.input("a");
        let (q, _ff) = b.dff_feedback("stuck");
        let y = b.and2(a, q);
        b.output("y", y);
        // Bypass finish(): assemble the broken netlist directly.
        let nl = match b.try_finish() {
            Err(crate::BuildError::UnpatchedFeedback { .. }) => {
                // Reconstruct by raw parts: a dff whose D points nowhere.
                let mut b2 = NetlistBuilder::new("donor");
                let a2 = b2.input("a");
                let q2 = b2.dff("stuck", a2);
                let y2 = b2.and2(a2, q2);
                b2.output("y", y2);
                let (name, nets, gates, mut dffs, inputs, outputs) = b2.finish().into_raw_parts();
                dffs[0] = Dff {
                    d: NetId::from_index(u32::MAX as usize),
                    q: dffs[0].q(),
                    name: "stuck".into(),
                };
                Netlist::from_raw_parts(name, nets, gates, dffs, inputs, outputs)
            }
            other => panic!("expected UnpatchedFeedback, got {other:?}"),
        };
        let diags = lint(&nl);
        assert!(
            kinds(&diags).contains(&LintKind::UnpatchedFeedback),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.message.contains("stuck")));
    }

    #[test]
    fn detects_combinational_loop() {
        let (name, mut nets, mut gates, dffs, inputs, outputs) = clean().into_raw_parts();
        // Two cross-coupled AND gates: g_a reads g_b's output and vice
        // versa.
        let na = NetId::from_index(nets.len());
        nets.push(Net {
            driver: NetDriver::Gate(crate::GateId::from_index(gates.len())),
            name: None,
        });
        let nb = NetId::from_index(nets.len());
        nets.push(Net {
            driver: NetDriver::Gate(crate::GateId::from_index(gates.len() + 1)),
            name: None,
        });
        let pi = inputs[0];
        gates.push(Gate::new(GateKind::And, vec![pi, nb], na));
        gates.push(Gate::new(GateKind::And, vec![pi, na], nb));
        let mut outputs = outputs;
        outputs.push(("looped".into(), na));
        let nl = Netlist::from_raw_parts(name, nets, gates, dffs, inputs, outputs);
        let diags = lint(&nl);
        assert!(
            kinds(&diags).contains(&LintKind::CombinationalLoop),
            "{diags:?}"
        );
    }

    #[test]
    fn detects_dead_gate() {
        let mut b = NetlistBuilder::new("deadwood");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        let _unused = b.xor2(a, c); // no reader, no output
        b.output("y", y);
        let nl = b.finish();
        let diags = lint(&nl);
        assert_eq!(kinds(&diags), vec![LintKind::DeadGate], "{diags:?}");
        assert!(diags[0].message.contains("xor"), "{diags:?}");
    }

    #[test]
    fn every_shipped_generator_lints_clean() {
        use crate::components;
        let generators: Vec<(&str, Netlist)> = vec![
            ("alu", components::alu(8).netlist),
            ("cmp", components::cmp(8).netlist),
            ("mul", components::mul(8).netlist),
            ("regfile", components::register_file(8, 8, 1, 2).netlist),
            ("ldst", components::load_store(8).netlist),
            ("pc", components::pc(8).netlist),
            ("immediate", components::immediate(8).netlist),
            ("input_socket", components::input_socket(8, 4, 5).netlist),
            ("output_socket", components::output_socket(8, 4, 6).netlist),
            ("stage_control", components::stage_control().netlist),
        ];
        for (name, nl) in generators {
            let diags = lint(&nl);
            assert!(
                diags.is_empty(),
                "{name}: {}",
                diags
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
    }

    #[test]
    fn elaborated_point_lints_clean() {
        let nl = crate::elaborate(&tta_arch::Architecture::figure9()).unwrap();
        let diags = lint(&nl);
        assert!(
            diags.is_empty(),
            "{}",
            diags
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
    }

    #[test]
    fn dead_gate_sees_through_flip_flops() {
        // A gate feeding only a flip-flop whose Q reaches an output is
        // live; one feeding a flip-flop that goes nowhere is dead.
        let mut b = NetlistBuilder::new("seq");
        let a = b.input("a");
        let n1 = b.not(a);
        let q1 = b.dff("live", n1);
        b.output("y", q1);
        let n2 = b.not(a);
        let _q2 = b.dff("limbo", n2);
        let nl = b.finish();
        let diags = lint(&nl);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, LintKind::DeadGate);
        assert!(diags[0].message.contains("g1"), "{diags:?}");
    }
}
