//! Gate-level netlist infrastructure for the TTA design/test exploration flow.
//!
//! The paper assumes every datapath component (ALU, comparator, register
//! file, load/store unit, program counter, sockets, …) has been
//! "predesigned up to the gate-level using the Synopsys synthesis package"
//! so that an ATPG tool can back-annotate each with its stuck-at test
//! pattern count, area and delay. This crate is that substrate: a small
//! structural netlist IR, a cell library with gate-equivalent area and unit
//! delays, a 64-way bit-parallel logic simulator, and generators that build
//! every component of the paper's TTA template at a parameterisable data
//! width.
//!
//! # Quickstart
//!
//! ```
//! use tta_netlist::{NetlistBuilder, components};
//!
//! // Build a 16-bit ALU like the one in Figure 9 of the paper.
//! let alu = components::alu(16);
//! assert!(alu.netlist.gate_count() > 100);
//! // Area is reported in NAND2 gate equivalents.
//! assert!(alu.netlist.area() > 0.0);
//!
//! // Or hand-build structural logic.
//! let mut b = NetlistBuilder::new("maj3");
//! let x = b.input("x");
//! let y = b.input("y");
//! let z = b.input("z");
//! let xy = b.and2(x, y);
//! let yz = b.and2(y, z);
//! let xz = b.and2(x, z);
//! let t = b.or2(xy, yz);
//! let maj = b.or2(t, xz);
//! b.output("maj", maj);
//! let nl = b.finish();
//! assert_eq!(nl.primary_inputs().len(), 3);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod components;
pub mod elaborate;
pub mod gate;
pub mod library;
pub mod lint;
pub mod netlist;
pub mod sim;
pub mod stats;
pub mod timing;
pub mod verilog;

pub use builder::{BuildError, BuilderMark, NetlistBuilder};
pub use elaborate::{elaborate, ElaborateError, IncrementalElaborator};
pub use gate::{Gate, GateId, GateKind};
pub use lint::{lint, LintDiagnostic, LintKind};
pub use netlist::{Net, NetDriver, NetId, Netlist, NetlistError};
pub use sim::Simulator;
pub use stats::NetlistStats;
pub use verilog::to_verilog;
