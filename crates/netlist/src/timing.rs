//! Static timing: critical-path estimation over the combinational graph.
//!
//! The MOVE-style exploration needs a per-component delay figure so that a
//! candidate architecture's cycle time can be bounded; this module provides
//! a classic longest-path analysis using the unit delays of
//! [`crate::library`].

use crate::library;
use crate::netlist::{NetDriver, Netlist};

/// Result of a longest-path timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worst arrival time at any primary output or flip-flop D pin,
    /// including clock-to-Q at the launching register and setup at the
    /// capturing one.
    pub critical_path: f64,
    /// Worst arrival considering only PO endpoints.
    pub worst_po: f64,
    /// Worst arrival considering only flip-flop D endpoints.
    pub worst_reg: f64,
    /// Logic depth (levels of gates) on the deepest path.
    pub depth: u32,
}

/// Per-net arrival times (same indexing as the netlist's nets).
pub fn arrival_times(nl: &Netlist) -> Vec<f64> {
    let mut arrival = vec![0.0f64; nl.net_count()];
    for (i, net) in nl.nets().iter().enumerate() {
        arrival[i] = match net.driver() {
            NetDriver::DffQ(_) => library::DFF_CLK_TO_Q,
            _ => 0.0,
        };
    }
    for &gid in nl.topo_order() {
        let g = nl.gate(gid);
        let worst_in = g
            .inputs()
            .iter()
            .map(|n| arrival[n.index()])
            .fold(0.0f64, f64::max);
        arrival[g.output().index()] = worst_in + library::gate_delay(g.kind());
    }
    arrival
}

/// Per-net logic depth (levels of gates from any source).
pub fn logic_depth(nl: &Netlist) -> Vec<u32> {
    let mut depth = vec![0u32; nl.net_count()];
    for &gid in nl.topo_order() {
        let g = nl.gate(gid);
        let worst_in = g
            .inputs()
            .iter()
            .map(|n| depth[n.index()])
            .max()
            .unwrap_or(0);
        depth[g.output().index()] = worst_in + 1;
    }
    depth
}

/// Runs longest-path analysis over the whole netlist.
pub fn analyze(nl: &Netlist) -> TimingReport {
    let arrival = arrival_times(nl);
    let depth = logic_depth(nl);
    let worst_po = nl
        .primary_outputs()
        .iter()
        .map(|(_, n)| arrival[n.index()])
        .fold(0.0f64, f64::max);
    let worst_reg = nl
        .dffs()
        .iter()
        .map(|ff| arrival[ff.d().index()] + library::DFF_SETUP)
        .fold(0.0f64, f64::max);
    let critical_path = worst_po.max(worst_reg);
    let max_depth = depth.iter().copied().max().unwrap_or(0);
    TimingReport {
        critical_path,
        worst_po,
        worst_reg,
        depth: max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn deeper_logic_has_longer_path() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let mut x = a;
        for _ in 0..10 {
            x = b.not(x);
        }
        b.output("y", x);
        let shallow = {
            let mut b2 = NetlistBuilder::new("single");
            let a2 = b2.input("a");
            let y2 = b2.not(a2);
            b2.output("y", y2);
            analyze(&b2.finish())
        };
        let deep = analyze(&b.finish());
        assert!(deep.critical_path > shallow.critical_path);
        assert_eq!(deep.depth, 10);
        assert_eq!(shallow.depth, 1);
    }

    #[test]
    fn registers_add_clk_to_q_and_setup() {
        let mut b = NetlistBuilder::new("r2r");
        let d = b.input("d");
        let q = b.dff("a", d);
        let n = b.not(q);
        let _q2 = b.dff("b", n);
        let nl = b.finish();
        let report = analyze(&nl);
        // clk->q + inverter + setup
        let expect = crate::library::DFF_CLK_TO_Q
            + crate::library::gate_delay(crate::GateKind::Not)
            + crate::library::DFF_SETUP;
        assert!((report.worst_reg - expect).abs() < 1e-9);
    }

    #[test]
    fn empty_logic_has_zero_depth() {
        let mut b = NetlistBuilder::new("wire");
        let a = b.input("a");
        b.output("y", a);
        let report = analyze(&b.finish());
        assert_eq!(report.depth, 0);
        assert_eq!(report.critical_path, 0.0);
    }
}
