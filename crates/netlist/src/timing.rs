//! Static timing: critical-path estimation over the combinational graph.
//!
//! The MOVE-style exploration needs a per-component delay figure so that a
//! candidate architecture's cycle time can be bounded; this module provides
//! a classic longest-path analysis using the unit delays of
//! [`crate::library`].
//!
//! Two analysis tiers coexist:
//!
//! * [`analyze`] — the original unit-delay longest path. The component
//!   back-annotation flow depends on its exact arithmetic, so it is
//!   frozen: table-fidelity sweeps stay bit-identical across releases.
//! * [`sta`] / [`loaded_arrival_times`] — the netlist-fidelity tier.
//!   Arrival times additionally charge each driving cell
//!   [`library::FANOUT_DELAY_PER_LOAD`] per reader beyond the first
//!   (from [`Netlist::fanout_table`]), and every endpoint (primary
//!   output or flip-flop D) gets a slack against a candidate clock.

use crate::library;
use crate::netlist::{Fanout, NetDriver, NetId, Netlist};

/// Result of a longest-path timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worst arrival time at any primary output or flip-flop D pin,
    /// including clock-to-Q at the launching register and setup at the
    /// capturing one.
    pub critical_path: f64,
    /// Worst arrival considering only PO endpoints.
    pub worst_po: f64,
    /// Worst arrival considering only flip-flop D endpoints.
    pub worst_reg: f64,
    /// Logic depth (levels of gates) on the deepest path.
    pub depth: u32,
}

/// Per-net arrival times (same indexing as the netlist's nets).
pub fn arrival_times(nl: &Netlist) -> Vec<f64> {
    let mut arrival = vec![0.0f64; nl.net_count()];
    for (i, net) in nl.nets().iter().enumerate() {
        arrival[i] = match net.driver() {
            NetDriver::DffQ(_) => library::DFF_CLK_TO_Q,
            _ => 0.0,
        };
    }
    for &gid in nl.topo_order() {
        let g = nl.gate(gid);
        let worst_in = g
            .inputs()
            .iter()
            .map(|n| arrival[n.index()])
            .fold(0.0f64, f64::max);
        arrival[g.output().index()] = worst_in + library::gate_delay(g.kind());
    }
    arrival
}

/// Per-net logic depth (levels of gates from any source).
pub fn logic_depth(nl: &Netlist) -> Vec<u32> {
    let mut depth = vec![0u32; nl.net_count()];
    for &gid in nl.topo_order() {
        let g = nl.gate(gid);
        let worst_in = g
            .inputs()
            .iter()
            .map(|n| depth[n.index()])
            .max()
            .unwrap_or(0);
        depth[g.output().index()] = worst_in + 1;
    }
    depth
}

/// Runs longest-path analysis over the whole netlist.
pub fn analyze(nl: &Netlist) -> TimingReport {
    let arrival = arrival_times(nl);
    let depth = logic_depth(nl);
    let worst_po = nl
        .primary_outputs()
        .iter()
        .map(|(_, n)| arrival[n.index()])
        .fold(0.0f64, f64::max);
    let worst_reg = nl
        .dffs()
        .iter()
        .map(|ff| arrival[ff.d().index()] + library::DFF_SETUP)
        .fold(0.0f64, f64::max);
    let critical_path = worst_po.max(worst_reg);
    let max_depth = depth.iter().copied().max().unwrap_or(0);
    TimingReport {
        critical_path,
        worst_po,
        worst_reg,
        depth: max_depth,
    }
}

/// What kind of timing endpoint a [`EndpointSlack`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointKind {
    /// A primary output (arrival must fit inside the clock period).
    PrimaryOutput,
    /// A flip-flop D pin (arrival + setup must fit inside the clock).
    FlipFlopD,
}

/// Slack of one timing endpoint against a candidate clock period.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointSlack {
    /// Endpoint name: the output's port name or the flip-flop's instance
    /// name.
    pub name: String,
    /// What the endpoint is.
    pub kind: EndpointKind,
    /// Loaded data arrival time at the endpoint (setup already included
    /// for flip-flop endpoints).
    pub required_arrival: f64,
    /// `clock - required_arrival`; negative means a violation.
    pub slack: f64,
}

/// Result of the fanout-aware static timing analysis ([`sta`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StaReport {
    /// The candidate clock period the slacks are measured against.
    pub clock: f64,
    /// Loaded critical path — the minimum feasible clock period.
    pub critical_path: f64,
    /// Worst endpoint slack (negative when the clock is infeasible).
    pub worst_slack: f64,
    /// Number of endpoints with negative slack.
    pub violations: usize,
    /// Every endpoint, worst slack first (ties broken by name).
    pub endpoints: Vec<EndpointSlack>,
}

/// Per-net arrival times charging fanout load on every driving cell.
///
/// Identical to [`arrival_times`] except that a net with `r` readers adds
/// `FANOUT_DELAY_PER_LOAD * (r - 1)` to its driver's propagation delay —
/// gate outputs and flip-flop Q pins both pay; primary inputs and
/// constants are assumed externally buffered.
pub fn loaded_arrival_times(nl: &Netlist, fanout: &Fanout) -> Vec<f64> {
    let load = |net: NetId| -> f64 {
        library::FANOUT_DELAY_PER_LOAD * fanout.reader_count(net).saturating_sub(1) as f64
    };
    let mut arrival = vec![0.0f64; nl.net_count()];
    for (i, net) in nl.nets().iter().enumerate() {
        if let NetDriver::DffQ(_) = net.driver() {
            arrival[i] = library::DFF_CLK_TO_Q + load(NetId::from_index(i));
        }
    }
    for &gid in nl.topo_order() {
        let g = nl.gate(gid);
        let worst_in = g
            .inputs()
            .iter()
            .map(|n| arrival[n.index()])
            .fold(0.0f64, f64::max);
        let out = g.output();
        arrival[out.index()] = worst_in + library::gate_delay(g.kind()) + load(out);
    }
    arrival
}

/// Runs the fanout-aware static timing analysis against a candidate
/// `clock` period, reporting per-endpoint slack.
///
/// Pass the loaded critical path itself (from a previous run, or
/// [`min_clock_period`]) to get a zero-worst-slack report.
pub fn sta(nl: &Netlist, clock: f64) -> StaReport {
    let fanout = nl.fanout_table();
    let arrival = loaded_arrival_times(nl, &fanout);
    let mut endpoints: Vec<EndpointSlack> = Vec::new();
    for (name, net) in nl.primary_outputs() {
        let t = arrival[net.index()];
        endpoints.push(EndpointSlack {
            name: name.clone(),
            kind: EndpointKind::PrimaryOutput,
            required_arrival: t,
            slack: clock - t,
        });
    }
    for ff in nl.dffs() {
        let t = arrival[ff.d().index()] + library::DFF_SETUP;
        endpoints.push(EndpointSlack {
            name: ff.name().to_string(),
            kind: EndpointKind::FlipFlopD,
            required_arrival: t,
            slack: clock - t,
        });
    }
    endpoints.sort_by(|a, b| {
        a.slack
            .partial_cmp(&b.slack)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    let critical_path = endpoints
        .iter()
        .map(|e| e.required_arrival)
        .fold(0.0f64, f64::max);
    let worst_slack = endpoints.first().map_or(clock, |e| e.slack);
    let violations = endpoints.iter().filter(|e| e.slack < 0.0).count();
    StaReport {
        clock,
        critical_path,
        worst_slack,
        violations,
        endpoints,
    }
}

/// The minimum feasible clock period under the loaded timing model: the
/// loaded critical path over all endpoints.
pub fn min_clock_period(nl: &Netlist) -> f64 {
    let fanout = nl.fanout_table();
    let arrival = loaded_arrival_times(nl, &fanout);
    let po = nl
        .primary_outputs()
        .iter()
        .map(|(_, n)| arrival[n.index()])
        .fold(0.0f64, f64::max);
    let reg = nl
        .dffs()
        .iter()
        .map(|ff| arrival[ff.d().index()] + library::DFF_SETUP)
        .fold(0.0f64, f64::max);
    po.max(reg)
}

/// Fanout/load-distribution summary of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadDistribution {
    /// Total number of nets.
    pub nets: usize,
    /// Total reader (load) count across all nets.
    pub total_readers: usize,
    /// Highest reader count on any single net.
    pub max_fanout: usize,
    /// Name (or id) of a net with the highest reader count.
    pub max_net: String,
    /// Histogram over reader counts: nets with 0, 1, 2–3, 4–7, 8–15 and
    /// ≥16 readers respectively.
    pub buckets: [usize; 6],
}

impl LoadDistribution {
    /// Mean readers per net.
    pub fn mean_fanout(&self) -> f64 {
        if self.nets == 0 {
            0.0
        } else {
            self.total_readers as f64 / self.nets as f64
        }
    }
}

/// Computes the fanout/load distribution of a netlist.
pub fn load_distribution(nl: &Netlist) -> LoadDistribution {
    let fanout = nl.fanout_table();
    let mut dist = LoadDistribution {
        nets: nl.net_count(),
        total_readers: 0,
        max_fanout: 0,
        max_net: String::new(),
        buckets: [0; 6],
    };
    for i in 0..nl.net_count() {
        let id = NetId::from_index(i);
        let r = fanout.reader_count(id);
        dist.total_readers += r;
        if r > dist.max_fanout || dist.max_net.is_empty() {
            dist.max_fanout = r;
            dist.max_net = nl
                .net(id)
                .name()
                .map_or_else(|| id.to_string(), str::to_string);
        }
        let bucket = match r {
            0 => 0,
            1 => 1,
            2..=3 => 2,
            4..=7 => 3,
            8..=15 => 4,
            _ => 5,
        };
        dist.buckets[bucket] += 1;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn deeper_logic_has_longer_path() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let mut x = a;
        for _ in 0..10 {
            x = b.not(x);
        }
        b.output("y", x);
        let shallow = {
            let mut b2 = NetlistBuilder::new("single");
            let a2 = b2.input("a");
            let y2 = b2.not(a2);
            b2.output("y", y2);
            analyze(&b2.finish())
        };
        let deep = analyze(&b.finish());
        assert!(deep.critical_path > shallow.critical_path);
        assert_eq!(deep.depth, 10);
        assert_eq!(shallow.depth, 1);
    }

    #[test]
    fn registers_add_clk_to_q_and_setup() {
        let mut b = NetlistBuilder::new("r2r");
        let d = b.input("d");
        let q = b.dff("a", d);
        let n = b.not(q);
        let _q2 = b.dff("b", n);
        let nl = b.finish();
        let report = analyze(&nl);
        // clk->q + inverter + setup
        let expect = crate::library::DFF_CLK_TO_Q
            + crate::library::gate_delay(crate::GateKind::Not)
            + crate::library::DFF_SETUP;
        assert!((report.worst_reg - expect).abs() < 1e-9);
    }

    #[test]
    fn empty_logic_has_zero_depth() {
        let mut b = NetlistBuilder::new("wire");
        let a = b.input("a");
        b.output("y", a);
        let report = analyze(&b.finish());
        assert_eq!(report.depth, 0);
        assert_eq!(report.critical_path, 0.0);
    }
}
