//! 64-way bit-parallel logic simulation.
//!
//! Every net carries a `u64`, i.e. 64 independent patterns evaluated at
//! once — the standard trick that makes fault simulation of the paper's
//! datapath components cheap enough to back-annotate a whole design space.

use std::collections::HashMap;

use crate::netlist::{NetDriver, Netlist};

/// Combinational (single-cycle) evaluator for a [`Netlist`].
///
/// The simulator itself is stateless; flip-flop state is passed in
/// explicitly, which lets ATPG treat flip-flop outputs as pseudo primary
/// inputs (the full-scan view used throughout the paper).
///
/// # Examples
///
/// ```
/// use tta_netlist::{NetlistBuilder, Simulator};
///
/// let mut b = NetlistBuilder::new("xor");
/// let a = b.input("a");
/// let c = b.input("b");
/// let y = b.xor2(a, c);
/// b.output("y", y);
/// let nl = b.finish();
/// let sim = Simulator::new(&nl);
/// let outs = sim.eval_words(&nl, &[("a", 1), ("b", 0)]);
/// assert_eq!(outs["y"], 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    _private: (),
}

impl Simulator {
    /// Creates a simulator for netlists shaped like `netlist`.
    ///
    /// The argument is only used for interface symmetry and future
    /// preprocessing; any structurally valid netlist may be evaluated.
    pub fn new(_netlist: &Netlist) -> Self {
        Simulator { _private: () }
    }

    /// Evaluates the combinational logic.
    ///
    /// `pi` holds one 64-pattern word per primary input (in PI order) and
    /// `state` one word per flip-flop (Q values, in flip-flop order).
    /// Returns a value word for every net.
    ///
    /// # Panics
    ///
    /// Panics if `pi` or `state` have the wrong length.
    pub fn eval(&self, nl: &Netlist, pi: &[u64], state: &[u64]) -> Vec<u64> {
        assert_eq!(pi.len(), nl.primary_inputs().len(), "PI width mismatch");
        assert_eq!(state.len(), nl.dff_count(), "state width mismatch");
        let mut values = vec![0u64; nl.net_count()];
        for (i, net) in nl.nets().iter().enumerate() {
            match net.driver() {
                NetDriver::PrimaryInput(k) => values[i] = pi[k as usize],
                NetDriver::DffQ(ff) => values[i] = state[ff.index()],
                NetDriver::Const0 => values[i] = 0,
                NetDriver::Const1 => values[i] = u64::MAX,
                NetDriver::Gate(_) | NetDriver::Floating => {}
            }
        }
        let mut ins = [0u64; 3];
        for &gid in nl.topo_order() {
            let g = nl.gate(gid);
            for (k, inp) in g.inputs().iter().enumerate() {
                ins[k] = values[inp.index()];
            }
            values[g.output().index()] = g.kind().eval(&ins[..g.inputs().len()]);
        }
        values
    }

    /// Next-state word for every flip-flop given a completed `eval`.
    pub fn next_state(&self, nl: &Netlist, values: &[u64]) -> Vec<u64> {
        nl.dffs().iter().map(|ff| values[ff.d().index()]).collect()
    }

    /// Convenience evaluation with named input words and numeric values.
    ///
    /// Input names may refer to single-bit inputs (`"sub"`) or words
    /// declared via [`crate::NetlistBuilder::input_word`] (`"a"` expands to
    /// `a[0]`, `a[1]`, …). Unmentioned inputs are zero, flip-flop state is
    /// zero, and the returned map aggregates outputs the same way.
    ///
    /// Only pattern 0 (bit 0 of each word) is driven, making this ideal for
    /// functional unit tests.
    pub fn eval_words(&self, nl: &Netlist, inputs: &[(&str, u64)]) -> HashMap<String, u64> {
        let pi = pack_word_inputs(nl, inputs);
        let values = self.eval(nl, &pi, &vec![0; nl.dff_count()]);
        collect_outputs(nl, &values)
    }
}

/// Packs named word inputs into a PI vector (pattern 0 only).
///
/// # Panics
///
/// Panics if a name matches no primary input.
pub fn pack_word_inputs(nl: &Netlist, inputs: &[(&str, u64)]) -> Vec<u64> {
    let mut pi = vec![0u64; nl.primary_inputs().len()];
    let named = nl.named_nets();
    for (name, value) in inputs {
        if let Some(net) = named.get(*name) {
            pi[pi_position(nl, *net)] = value & 1;
            continue;
        }
        let mut bit = 0;
        loop {
            let Some(net) = named.get(&format!("{name}[{bit}]")) else {
                assert!(bit > 0, "no input named {name}");
                break;
            };
            pi[pi_position(nl, *net)] = (value >> bit) & 1;
            bit += 1;
        }
    }
    pi
}

fn pi_position(nl: &Netlist, net: crate::NetId) -> usize {
    match nl.net(net).driver() {
        NetDriver::PrimaryInput(k) => k as usize,
        other => panic!("net {net} is not a primary input (driver {other:?})"),
    }
}

/// Aggregates `name[i]` outputs back into numeric words (bit 0 of each
/// pattern word).
pub fn collect_outputs(nl: &Netlist, values: &[u64]) -> HashMap<String, u64> {
    let mut out: HashMap<String, u64> = HashMap::new();
    for (name, net) in nl.primary_outputs() {
        let bit = values[net.index()] & 1;
        if let Some(idx) = parse_indexed(name) {
            let entry = out.entry(idx.0.to_string()).or_insert(0);
            *entry |= bit << idx.1;
        } else {
            out.insert(name.clone(), bit);
        }
    }
    out
}

fn parse_indexed(name: &str) -> Option<(&str, u32)> {
    let open = name.rfind('[')?;
    let close = name.rfind(']')?;
    if close != name.len() - 1 || open + 1 >= close {
        return None;
    }
    let idx: u32 = name[open + 1..close].parse().ok()?;
    Some((&name[..open], idx))
}

/// Cycle-accurate sequential simulation: drives inputs, clocks flip-flops.
///
/// # Examples
///
/// ```
/// use tta_netlist::{NetlistBuilder, sim::OwnedSeqSim};
///
/// // 4-bit register with enable.
/// let mut b = NetlistBuilder::new("reg4");
/// let en = b.input("en");
/// let d = b.input_word("d", 4);
/// let (q, ff) = b.dff_word_feedback("r", 4);
/// let next = b.mux_word(en, &q, &d);
/// b.set_dff_word_d(&ff, &next);
/// b.output_word("q", &q);
/// let nl = b.finish();
///
/// let mut sim = OwnedSeqSim::new(nl);
/// sim.step_words(&[("en", 1), ("d", 9)]);
/// assert_eq!(sim.state_value(0..4), 9);
/// sim.step_words(&[("en", 0), ("d", 3)]);
/// assert_eq!(sim.state_value(0..4), 9); // hold
/// ```
#[derive(Debug)]
pub struct OwnedSeqSim {
    nl: Netlist,
    sim: Simulator,
    state: Vec<u64>,
    values: Vec<u64>,
}

impl OwnedSeqSim {
    /// Creates a sequential simulator that owns its netlist; flip-flops
    /// reset to zero.
    pub fn new(nl: Netlist) -> Self {
        let sim = Simulator::new(&nl);
        let state = vec![0; nl.dff_count()];
        let values = vec![0; nl.net_count()];
        OwnedSeqSim {
            nl,
            sim,
            state,
            values,
        }
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// Applies one clock cycle with raw PI pattern words.
    pub fn step(&mut self, pi: &[u64]) {
        self.values = self.sim.eval(&self.nl, pi, &self.state);
        self.state = self.sim.next_state(&self.nl, &self.values);
    }

    /// Applies one cycle with named input words (pattern 0 only).
    pub fn step_words(&mut self, inputs: &[(&str, u64)]) {
        let pi = pack_word_inputs(&self.nl, inputs);
        self.step(&pi);
    }

    /// Output words observed *during* the last step (before the edge).
    pub fn output_words(&self) -> HashMap<String, u64> {
        collect_outputs(&self.nl, &self.values)
    }

    /// Current flip-flop state words (after the last edge).
    pub fn state(&self) -> &[u64] {
        &self.state
    }

    /// Overwrites flip-flop state (used by scan-load models).
    pub fn set_state(&mut self, state: Vec<u64>) {
        assert_eq!(state.len(), self.nl.dff_count(), "state width mismatch");
        self.state = state;
    }

    /// Numeric value of a contiguous flip-flop range (pattern 0, LSB =
    /// first flip-flop in the range).
    pub fn state_value(&self, range: std::ops::Range<usize>) -> u64 {
        range
            .clone()
            .enumerate()
            .map(|(bit, i)| (self.state[i] & 1) << bit)
            .sum()
    }

    /// Net values captured during the last step.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn feedback_counter_counts() {
        // 4-bit free-running counter: q <- q + 1.
        let mut b = NetlistBuilder::new("cnt4");
        let _en = b.input("en");
        let (q, ff) = b.dff_word_feedback("cnt", 4);
        let (inc, _) = b.increment(&q);
        b.set_dff_word_d(&ff, &inc);
        b.output_word("q", &q);
        let nl = b.finish();
        let mut sim = OwnedSeqSim::new(nl);
        for expect in 1..=20u64 {
            sim.step_words(&[("en", 0)]);
            assert_eq!(sim.state_value(0..4), expect & 0xF);
        }
    }

    #[test]
    fn parallel_patterns_independent() {
        let mut b = NetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish();
        let sim = Simulator::new(&nl);
        let values = sim.eval(&nl, &[0xAAAA_AAAA_AAAA_AAAA], &[]);
        let ynet = nl.primary_outputs()[0].1;
        assert_eq!(values[ynet.index()], !0xAAAA_AAAA_AAAA_AAAAu64);
    }

    #[test]
    fn parse_indexed_names() {
        assert_eq!(parse_indexed("a[3]"), Some(("a", 3)));
        assert_eq!(parse_indexed("sum[15]"), Some(("sum", 15)));
        assert_eq!(parse_indexed("plain"), None);
    }

    #[test]
    fn outputs_reflect_pre_edge_values() {
        let mut b = NetlistBuilder::new("pipe");
        let d = b.input("d");
        let q = b.dff("r", d);
        b.output("q", q);
        let nl = b.finish();
        let mut sim = OwnedSeqSim::new(nl);
        sim.step_words(&[("d", 1)]);
        // During the first cycle the register still holds 0.
        assert_eq!(sim.output_words()["q"], 0);
        sim.step_words(&[("d", 0)]);
        assert_eq!(sim.output_words()["q"], 1);
    }
}
