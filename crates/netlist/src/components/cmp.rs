//! The comparator (CMP) component of Figure 9: equality and magnitude
//! comparison, hybrid-pipelined like the ALU.

use crate::builder::NetlistBuilder;
use crate::components::{Component, ComponentKind};

/// Comparison predicates of the generated CMP unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `o == t`
    Eq = 0,
    /// `o != t`
    Ne = 1,
    /// `o < t` (unsigned)
    Ltu = 2,
    /// `o >= t` (unsigned)
    Geu = 3,
    /// `o < t` (two's complement)
    Lts = 4,
    /// `o >= t` (two's complement)
    Ges = 5,
}

impl CmpOp {
    /// All predicates in opcode order.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Ltu,
        CmpOp::Geu,
        CmpOp::Lts,
        CmpOp::Ges,
    ];

    /// The 3-bit opcode.
    pub fn code(self) -> u64 {
        self as u64
    }

    /// Reference semantics at `width` bits; returns 0 or 1.
    pub fn eval(self, o: u64, t: u64, width: u32) -> u64 {
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        };
        let (o, t) = (o & mask, t & mask);
        let sign = 1u64 << (width - 1);
        let ltu = o < t;
        let lts = (o ^ sign) < (t ^ sign);
        u64::from(match self {
            CmpOp::Eq => o == t,
            CmpOp::Ne => o != t,
            CmpOp::Ltu => ltu,
            CmpOp::Geu => !ltu,
            CmpOp::Lts => lts,
            CmpOp::Ges => !lts,
        })
    }
}

/// Builds a `width`-bit comparator component.
///
/// Interface: inputs `o_in`, `t_in`, `en_o`, `en_t`, `op[3]`; output `r`
/// (a 1-bit result register — the condition flag moved onto a bus, e.g.
/// towards the PC unit for conditional branches).
pub fn cmp(width: usize) -> Component {
    assert!((2..=64).contains(&width), "CMP width out of range");
    let mut b = NetlistBuilder::new(format!("cmp{width}"));
    let o_in = b.input_word("o_in", width);
    let t_in = b.input_word("t_in", width);
    let en_o = b.input("en_o");
    let en_t = b.input("en_t");
    let op_in = b.input_word("op", 3);

    let (o_q, o_ff) = b.dff_word_feedback("o", width);
    let o_next = b.mux_word(en_o, &o_q, &o_in);
    b.set_dff_word_d(&o_ff, &o_next);

    let (t_q, t_ff) = b.dff_word_feedback("t", width);
    let t_next = b.mux_word(en_t, &t_q, &t_in);
    b.set_dff_word_d(&t_ff, &t_next);

    let (op_q, op_ff) = b.dff_word_feedback("opc", 3);
    let op_next = b.mux_word(en_t, &op_q, &op_in);
    b.set_dff_word_d(&op_ff, &op_next);

    let v = b.dff("v", en_t);

    // Core: a borrow-chain magnitude comparator (no discarded difference
    // bits — every gate is observable through the flag outputs, keeping
    // the fault universe free of structural redundancy). Per bit:
    //   borrow' = (!o & t) | ((o XNOR t) & borrow)
    // and the XNOR terms double as the equality reduction.
    let mut xnors = Vec::with_capacity(width);
    let mut borrow = b.const0();
    for i in 0..width {
        let no = b.not(o_q[i]);
        let lt_here = b.and2(no, t_q[i]);
        let eq_here = b.xnor2(o_q[i], t_q[i]);
        let keep = b.and2(eq_here, borrow);
        borrow = b.or2(lt_here, keep);
        xnors.push(eq_here);
    }
    let ltu = borrow; // o < t unsigned
    let eq = b.and_reduce(&xnors);
    let ne = b.not(eq);
    let geu = b.not(ltu);
    // lts = (sign_o ^ sign_t) ? sign_o : ltu
    let so = o_q[width - 1];
    let st = t_q[width - 1];
    let sdiff = b.xor2(so, st);
    let lts = b.mux2(sdiff, ltu, so);
    let ges = b.not(lts);

    // 8-way select on the opcode (slots 6,7 alias Eq).
    let z = b.const0();
    let choices: Vec<Vec<_>> = vec![
        vec![eq],
        vec![ne],
        vec![ltu],
        vec![geu],
        vec![lts],
        vec![ges],
        vec![eq],
        vec![z],
    ];
    let core = b.mux_tree(&op_q, &choices);

    let (r_q, r_ff) = b.dff_word_feedback("r", 1);
    let r_next = b.mux_word(v, &r_q, &core);
    b.set_dff_word_d(&r_ff, &r_next);
    b.output_word("r", &r_q);

    let netlist = b.finish();
    Component {
        kind: ComponentKind::Cmp,
        netlist,
        width,
        data_in_ports: 2,
        data_out_ports: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::OwnedSeqSim;

    fn run_op(sim: &mut OwnedSeqSim, op: CmpOp, o: u64, t: u64) -> u64 {
        sim.step_words(&[
            ("o_in", o),
            ("t_in", t),
            ("en_o", 1),
            ("en_t", 1),
            ("op", op.code()),
        ]);
        sim.step_words(&[]);
        sim.step_words(&[]);
        sim.output_words()["r"]
    }

    #[test]
    fn cmp_matches_golden_model_exhaustively_small() {
        let c = cmp(4);
        let mut sim = OwnedSeqSim::new(c.netlist);
        for op in CmpOp::ALL {
            for o in 0..16u64 {
                for t in 0..16u64 {
                    assert_eq!(
                        run_op(&mut sim, op, o, t),
                        op.eval(o, t, 4),
                        "{op:?} o={o} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn signed_wraparound_cases_16bit() {
        let c = cmp(16);
        let mut sim = OwnedSeqSim::new(c.netlist);
        // -1 < 0 signed, but 0xFFFF > 0 unsigned.
        assert_eq!(run_op(&mut sim, CmpOp::Lts, 0xFFFF, 0), 1);
        assert_eq!(run_op(&mut sim, CmpOp::Ltu, 0xFFFF, 0), 0);
        // i16::MIN < i16::MAX signed.
        assert_eq!(run_op(&mut sim, CmpOp::Lts, 0x8000, 0x7FFF), 1);
        assert_eq!(run_op(&mut sim, CmpOp::Geu, 0x8000, 0x7FFF), 1);
    }

    #[test]
    fn metadata() {
        let c = cmp(16);
        assert_eq!(c.nconn(), 3);
        // O + T + opcode + v + 1-bit R
        assert_eq!(c.infrastructure_ff_count(), 32 + 3 + 1 + 1);
    }
}
