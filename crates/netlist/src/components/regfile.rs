//! Register-file component (flip-flop implementation).
//!
//! The paper evaluates two register files (RF1 with 8 and RF2 with 12
//! registers) and notes that the *multi-port memory* implementation cannot
//! be full-scanned — that behavioural variant is modelled by the march
//! tests in `tta-dft`. This generator produces the flip-flop
//! implementation used for area figures and for the full-scan baseline
//! comparison of Table 1.

use crate::builder::NetlistBuilder;
use crate::components::{addr_bits, Component, ComponentKind};

/// Builds a register file with `regs` registers of `width` bits, `nin`
/// write ports and `nout` read ports.
///
/// Interface per write port `p`: `wdata{p}`, `waddr{p}`, `wen{p}`;
/// per read port `p`: `raddr{p}`, `ren{p}`; output `rdata{p}`.
///
/// Writes are pipelined through input registers (one-cycle latency, like
/// the O/T registers of an FU); reads capture the addressed register into
/// an output register (the RF's "R register" towards its output socket).
/// Storage flip-flops are named `store…` so the component can report the
/// infrastructure/storage split used by the scan-chain model.
///
/// # Panics
///
/// Panics if any parameter is zero or `regs > 256`.
pub fn register_file(width: usize, regs: usize, nin: usize, nout: usize) -> Component {
    assert!(width >= 1 && (1..=256).contains(&regs), "bad RF geometry");
    assert!(nin >= 1 && nout >= 1, "RF needs at least one port each way");
    let ab = addr_bits(regs.max(2));
    let mut b = NetlistBuilder::new(format!("rf{regs}x{width}_w{nin}r{nout}"));

    // ---- write-side pipeline registers ---------------------------------
    let mut wdata_q = Vec::new();
    let mut waddr_q = Vec::new();
    let mut wvalid_q = Vec::new();
    for p in 0..nin {
        let wdata = b.input_word(&format!("wdata{p}"), width);
        let waddr = b.input_word(&format!("waddr{p}"), ab);
        let wen = b.input(format!("wen{p}"));
        let (dq, dff) = b.dff_word_feedback(&format!("wdr{p}"), width);
        let dn = b.mux_word(wen, &dq, &wdata);
        b.set_dff_word_d(&dff, &dn);
        let (aq, aff) = b.dff_word_feedback(&format!("war{p}"), ab);
        let an = b.mux_word(wen, &aq, &waddr);
        b.set_dff_word_d(&aff, &an);
        let vq = b.dff(format!("wvr{p}"), wen);
        wdata_q.push(dq);
        waddr_q.push(aq);
        wvalid_q.push(vq);
    }

    // ---- storage core ----------------------------------------------------
    // Decoders per write port.
    // Only `regs` decode lines exist — a truncated decoder leaves no dead
    // match gates when `regs` is not a power of two (RF2 has 12).
    let decoders: Vec<Vec<_>> = waddr_q.iter().map(|a| b.decoder_n(a, regs)).collect();
    let mut store_q = Vec::with_capacity(regs);
    let mut store_ff = Vec::with_capacity(regs);
    for r in 0..regs {
        let (q, ff) = b.dff_word_feedback(&format!("store{r}"), width);
        store_q.push(q);
        store_ff.push(ff);
    }
    for r in 0..regs {
        let mut d = store_q[r].clone();
        for p in 0..nin {
            let sel = b.and2(wvalid_q[p], decoders[p][r]);
            d = b.mux_word(sel, &d, &wdata_q[p]);
        }
        b.set_dff_word_d(&store_ff[r], &d);
    }

    // ---- read-side --------------------------------------------------------
    // Pad the mux tree with zero words beyond `regs`.
    let zero = b.const0();
    let slots = 1usize << ab;
    let mut choices: Vec<Vec<_>> = store_q.clone();
    choices.resize(slots, vec![zero; width]);
    for p in 0..nout {
        let raddr = b.input_word(&format!("raddr{p}"), ab);
        let ren = b.input(format!("ren{p}"));
        let (aq, aff) = b.dff_word_feedback(&format!("rar{p}"), ab);
        let an = b.mux_word(ren, &aq, &raddr);
        b.set_dff_word_d(&aff, &an);
        let rv = b.dff(format!("rvr{p}"), ren);
        let selected = b.mux_tree(&aq, &choices);
        let (oq, off) = b.dff_word_feedback(&format!("ror{p}"), width);
        let on = b.mux_word(rv, &oq, &selected);
        b.set_dff_word_d(&off, &on);
        b.output_word(&format!("rdata{p}"), &oq);
    }

    let netlist = b.finish();
    Component {
        kind: ComponentKind::RegisterFile {
            regs: regs as u16,
            nin: nin as u8,
            nout: nout as u8,
        },
        netlist,
        width,
        data_in_ports: nin,
        data_out_ports: nout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::OwnedSeqSim;

    fn write(sim: &mut OwnedSeqSim, port: usize, addr: u64, data: u64) {
        let wd = format!("wdata{port}");
        let wa = format!("waddr{port}");
        let we = format!("wen{port}");
        sim.step_words(&[(&wd, data), (&wa, addr), (&we, 1)]);
        sim.step_words(&[]); // write commits one cycle later
    }

    fn read(sim: &mut OwnedSeqSim, port: usize, addr: u64) -> u64 {
        let ra = format!("raddr{port}");
        let re = format!("ren{port}");
        sim.step_words(&[(&ra, addr), (&re, 1)]);
        sim.step_words(&[]); // output register loads
        sim.step_words(&[]); // visible at outputs
        sim.output_words()[&format!("rdata{port}")]
    }

    #[test]
    fn write_then_read_roundtrip() {
        let c = register_file(16, 8, 1, 2);
        let mut sim = OwnedSeqSim::new(c.netlist);
        for r in 0..8u64 {
            write(&mut sim, 0, r, 0x1000 + r * 7);
        }
        for r in 0..8u64 {
            assert_eq!(read(&mut sim, 0, r), 0x1000 + r * 7, "reg {r} port 0");
            assert_eq!(read(&mut sim, 1, r), 0x1000 + r * 7, "reg {r} port 1");
        }
    }

    #[test]
    fn overwrite_replaces_value() {
        let c = register_file(8, 4, 1, 1);
        let mut sim = OwnedSeqSim::new(c.netlist);
        write(&mut sim, 0, 2, 0xAA);
        write(&mut sim, 0, 2, 0x55);
        assert_eq!(read(&mut sim, 0, 2), 0x55);
    }

    #[test]
    fn non_power_of_two_regcount_works() {
        // RF2 of the paper has 12 registers.
        let c = register_file(16, 12, 1, 2);
        let mut sim = OwnedSeqSim::new(c.netlist);
        write(&mut sim, 0, 11, 0xBEE);
        assert_eq!(read(&mut sim, 0, 11), 0xBEE);
        // Out-of-range slots read as zero.
        assert_eq!(read(&mut sim, 0, 13), 0);
    }

    #[test]
    fn dual_write_ports_independent() {
        let c = register_file(8, 8, 2, 1);
        let mut sim = OwnedSeqSim::new(c.netlist);
        // Write different registers simultaneously on both ports.
        sim.step_words(&[
            ("wdata0", 0x11),
            ("waddr0", 1),
            ("wen0", 1),
            ("wdata1", 0x22),
            ("waddr1", 2),
            ("wen1", 1),
        ]);
        sim.step_words(&[]);
        assert_eq!(read(&mut sim, 0, 1), 0x11);
        assert_eq!(read(&mut sim, 0, 2), 0x22);
    }

    #[test]
    fn storage_vs_infrastructure_split() {
        let c = register_file(16, 8, 1, 2);
        assert_eq!(c.storage_ff_count(), 8 * 16);
        // wdr(16) + war(3) + wvr(1) + 2*(rar(3) + rvr(1) + ror(16))
        assert_eq!(c.infrastructure_ff_count(), 16 + 3 + 1 + 2 * (3 + 1 + 16));
        assert_eq!(c.nconn(), 3);
    }

    #[test]
    fn bigger_rf_has_more_area() {
        let small = register_file(16, 8, 1, 2);
        let big = register_file(16, 12, 1, 2);
        assert!(big.area() > small.area());
    }
}
