//! Program counter / instruction sequencer (Figure 9).

use crate::builder::NetlistBuilder;
use crate::components::{Component, ComponentKind};

/// Builds a `width`-bit program counter.
///
/// Interface:
///
/// * `target_in` + `en_target` — operand move with the branch target
///   (O register);
/// * `cond_in` + `en_cond` — trigger move with the branch condition (from
///   CMP over a bus); a captured `1` takes the branch on the next cycle;
/// * `stall` — freezes the PC (instruction fetch not ready);
/// * output `iaddr` — current instruction address.
///
/// Unconditional jumps are conditional jumps with a constant-1 condition,
/// as in MOVE code.
pub fn pc(width: usize) -> Component {
    assert!((2..=64).contains(&width), "PC width out of range");
    let mut b = NetlistBuilder::new(format!("pc{width}"));
    let target_in = b.input_word("target_in", width);
    let en_target = b.input("en_target");
    let cond_in = b.input("cond_in");
    let en_cond = b.input("en_cond");
    let stall = b.input("stall");

    // O register: branch target.
    let (tg_q, tg_ff) = b.dff_word_feedback("o_target", width);
    let tg_next = b.mux_word(en_target, &tg_q, &target_in);
    b.set_dff_word_d(&tg_ff, &tg_next);

    // T register: condition bit + trigger valid.
    let (c_q, c_ff) = b.dff_feedback("t_cond");
    let c_next = b.mux2(en_cond, c_q, cond_in);
    b.set_dff_d(c_ff, c_next);
    let v = b.dff("v", en_cond);

    // PC register with increment / branch mux.
    let (pc_q, pc_ff) = b.dff_word_feedback("pcreg", width);
    let inc = b.increment_wrap(&pc_q);
    let take = b.and2(v, c_q);
    let next_seq = b.mux_word(take, &inc, &tg_q);
    let pc_next = b.mux_word(stall, &next_seq, &pc_q);
    b.set_dff_word_d(&pc_ff, &pc_next);

    b.output_word("iaddr", &pc_q);

    let netlist = b.finish();
    Component {
        kind: ComponentKind::Pc,
        netlist,
        width,
        data_in_ports: 2,
        data_out_ports: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::OwnedSeqSim;

    #[test]
    fn increments_by_default() {
        let c = pc(8);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[]); // pc: 0 -> 1
        sim.step_words(&[]); // pc: 1 -> 2
                             // Observe during a stalled cycle (PC holds while we look).
        sim.step_words(&[("stall", 1)]);
        assert_eq!(sim.output_words()["iaddr"], 2);
    }

    #[test]
    fn taken_branch_loads_target() {
        let c = pc(8);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("target_in", 0x20), ("en_target", 1)]);
        sim.step_words(&[("cond_in", 1), ("en_cond", 1)]);
        sim.step_words(&[]); // branch taken at this edge
        sim.step_words(&[("stall", 1)]);
        assert_eq!(sim.output_words()["iaddr"], 0x20);
    }

    #[test]
    fn untaken_branch_continues() {
        let c = pc(8);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("target_in", 0x20), ("en_target", 1)]);
        sim.step_words(&[("cond_in", 0), ("en_cond", 1)]);
        sim.step_words(&[]);
        sim.step_words(&[("stall", 1)]);
        // 3 unstalled cycles elapsed: PC = 3, definitely not 0x20.
        assert_eq!(sim.output_words()["iaddr"], 3);
    }

    #[test]
    fn stall_freezes_pc() {
        let c = pc(8);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[]);
        sim.step_words(&[("stall", 1)]);
        sim.step_words(&[("stall", 1)]);
        sim.step_words(&[("stall", 1)]);
        assert_eq!(sim.output_words()["iaddr"], 1);
    }
}
