//! Input and output sockets (Figure 4): the distributed control unit of a
//! TTA. Each socket watches the move-bus address field, matches its
//! hardwired component ID, captures the match in `Fin`/`Fout` and gates
//! data between the bus and the component.

use crate::builder::{NetlistBuilder, Word};
use crate::components::{Component, ComponentKind};
use crate::netlist::NetId;

/// Emits the socket-ID comparator of Figure 4: `addr` matched against the
/// hardwired `id_value` (constants folded into buffer/inverter choices),
/// qualified by `valid`. Returns the one-bit match signal.
pub(crate) fn emit_id_match(
    b: &mut NetlistBuilder,
    addr: &[NetId],
    id_value: u64,
    valid: NetId,
) -> NetId {
    let bits: Vec<_> = addr
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            if id_value >> i & 1 == 1 {
                b.buf(a)
            } else {
                b.not(a)
            }
        })
        .collect();
    let match_raw = b.and_reduce(&bits);
    b.and2(match_raw, valid)
}

/// One input-port bus attachment consumed by [`emit_socket_group_front`]:
/// the move-bus data word the port listens to, the bus's socket-address
/// field, its valid strobe, and the hardwired socket id to match.
pub(crate) struct SocketTap<'a> {
    /// Move-bus data word.
    pub bus: &'a [NetId],
    /// Socket-address field of the same bus.
    pub addr: &'a [NetId],
    /// Move-valid strobe of the same bus.
    pub valid: NetId,
    /// Hardwired socket id this port matches.
    pub id_value: u64,
}

/// The nets a socket-group front hands back to its instantiator.
pub(crate) struct SocketGroupFront {
    /// Per input port: the `Fin`-gated bus data towards the component.
    pub data: Vec<Word>,
    /// Per input port: the `Fin` load strobe.
    pub enables: Vec<NetId>,
    /// Result-register load strobe (the stage-control `exec` state).
    pub en_r: NetId,
    /// Output-socket drive strobe (`Fout`); AND each result bit with this
    /// to put the component's R register onto the bus.
    pub fout: NetId,
}

/// Emits the shared "front half" of a socket group — the input-socket
/// decoders, `Fin` capture registers, data gating, the stage-control FSM
/// of Figure 3 and the `Fout` register — into an arbitrary builder.
///
/// [`socket_group`] wraps this behind a standalone component interface;
/// the per-point elaborator (`crate::elaborate`) calls it directly so the
/// exact same control logic is stitched in front of every datapath
/// component of an explored architecture. Flip-flops are named
/// `{prefix}fin0…`, `{prefix}o_seen`, `{prefix}exec`, `{prefix}done`,
/// `{prefix}fout`.
pub(crate) fn emit_socket_group_front(
    b: &mut NetlistBuilder,
    prefix: &str,
    taps: &[SocketTap<'_>],
    out_ready: NetId,
) -> SocketGroupFront {
    let n_inputs = taps.len();
    assert!(n_inputs >= 1, "socket group needs at least one input port");

    // Input socket decoders (distinct hardwired ids per port).
    let mut fins = Vec::with_capacity(n_inputs);
    let mut data = Vec::with_capacity(n_inputs);
    for (port, tap) in taps.iter().enumerate() {
        let matched = emit_id_match(b, tap.addr, tap.id_value, tap.valid);
        let fin = b.dff(format!("{prefix}fin{port}"), matched);
        let gated: Word = tap.bus.iter().map(|&bit| b.and2(bit, fin)).collect();
        data.push(gated);
        fins.push(fin);
    }

    // Stage control (same FSM as the standalone stage_control component):
    // the last input port is the trigger.
    let t_loaded = fins[n_inputs - 1];
    let o_loaded = if n_inputs >= 2 { fins[0] } else { t_loaded };
    let (o_seen_q, o_seen_ff) = b.dff_feedback(format!("{prefix}o_seen"));
    let o_avail = b.or2(o_seen_q, o_loaded);
    let fire = b.and2(t_loaded, o_avail);
    let not_fire = b.not(fire);
    let o_seen_next = b.and2(o_avail, not_fire);
    b.set_dff_d(o_seen_ff, o_seen_next);
    let exec = b.dff(format!("{prefix}exec"), fire);
    let (done_q, done_ff) = b.dff_feedback(format!("{prefix}done"));
    let taken = b.and2(done_q, out_ready);
    let not_taken = b.not(taken);
    let hold = b.and2(done_q, not_taken);
    let done_next = b.or2(exec, hold);
    b.set_dff_d(done_ff, done_next);

    // Output socket: Fout driven by the done state and the bus grant.
    let fout_d = b.and2(done_q, out_ready);
    let fout = b.dff(format!("{prefix}fout"), fout_d);

    SocketGroupFront {
        data,
        enables: fins,
        en_r: exec,
        fout,
    }
}

/// Builds an input socket: bus → component port.
///
/// Parameters: data `width`, `id_bits` of the socket address field, and
/// the socket's hardwired `id_value`.
///
/// Interface: inputs `bus` (data), `addr` (destination socket id on the
/// bus), `valid` (a move is present); outputs `data` (gated data towards
/// the component register), `enable` (load strobe, one cycle delayed
/// through `Fin` per relations (6)–(7) of the paper).
pub fn input_socket(width: usize, id_bits: usize, id_value: u64) -> Component {
    assert!((1..=16).contains(&id_bits), "socket id field out of range");
    assert!(
        id_value < (1 << id_bits),
        "socket id does not fit the field"
    );
    let mut b = NetlistBuilder::new(format!("isock{width}_id{id_value}"));
    let bus = b.input_word("bus", width);
    let addr = b.input_word("addr", id_bits);
    let valid = b.input("valid");

    // ID match: compare addr against the hardwired id (constants folded
    // into inverter/buffer choices).
    let matched = emit_id_match(&mut b, &addr, id_value, valid);

    // Fin: instruction decode takes one cycle (relations (6)-(7)). Data
    // itself is gated combinationally — the capturing register is the
    // component's O/T register (Figure 4 keeps only control state in the
    // socket).
    let fin = b.dff("fin", matched);
    let gated: Vec<_> = bus.iter().map(|&bit| b.and2(bit, fin)).collect();

    b.output_word("data", &gated);
    b.output("enable", fin);

    let netlist = b.finish();
    Component {
        kind: ComponentKind::InputSocket,
        netlist,
        width,
        data_in_ports: 1,
        data_out_ports: 1,
    }
}

/// Builds an output socket: component result register → bus.
///
/// Interface: inputs `r_in` (component R register), `addr`, `valid`;
/// outputs `bus_out` (gated data; the AND-gating models the tri-state
/// driver) and `drive` (bus-driver enable via `Fout`, relation (8)).
pub fn output_socket(width: usize, id_bits: usize, id_value: u64) -> Component {
    assert!((1..=16).contains(&id_bits), "socket id field out of range");
    assert!(
        id_value < (1 << id_bits),
        "socket id does not fit the field"
    );
    let mut b = NetlistBuilder::new(format!("osock{width}_id{id_value}"));
    let r_in = b.input_word("r_in", width);
    let addr = b.input_word("addr", id_bits);
    let valid = b.input("valid");

    let matched = emit_id_match(&mut b, &addr, id_value, valid);
    let fout = b.dff("fout", matched);

    let gated: Vec<_> = r_in.iter().map(|&bit| b.and2(bit, fout)).collect();
    b.output_word("bus_out", &gated);
    b.output("drive", fout);

    let netlist = b.finish();
    Component {
        kind: ComponentKind::OutputSocket,
        netlist,
        width,
        data_in_ports: 1,
        data_out_ports: 1,
    }
}

/// Builds the complete socket/stage-control group of one datapath
/// component: `n_inputs` input-socket decoders (operand, trigger, …), one
/// output-socket decoder, the stage-control FSM of Figure 3, and the
/// data-gating logic towards the component and the bus.
///
/// This is the logic the paper tests through scan (eq. 13): ATPG on this
/// block yields the socket pattern count `np`, while the scan-chain
/// length `nl` additionally spans the component's pipeline registers.
pub fn socket_group(width: usize, n_inputs: usize, id_bits: usize) -> Component {
    assert!(
        n_inputs >= 1 && (1..=16).contains(&id_bits),
        "bad socket group"
    );
    let mut b = NetlistBuilder::new(format!("sockgrp{width}x{n_inputs}"));
    let bus = b.input_word("bus", width);
    let addr = b.input_word("addr", id_bits);
    let valid = b.input("valid");
    let r_in = b.input_word("r_in", width);
    let out_ready = b.input("out_ready");

    // Input socket decoders listen to the one local bus with hardwired
    // ids 1, 2, … (distinct per port); the shared front also emits the
    // stage-control FSM and the Fout register.
    let taps: Vec<SocketTap<'_>> = (0..n_inputs)
        .map(|port| SocketTap {
            bus: &bus,
            addr: &addr,
            valid,
            id_value: (port as u64 + 1) & ((1 << id_bits) - 1),
        })
        .collect();
    let front = emit_socket_group_front(&mut b, "", &taps, out_ready);
    for (port, (data, fin)) in front.data.iter().zip(&front.enables).enumerate() {
        b.output_word(&format!("data{port}"), data);
        b.output(format!("enable{port}"), *fin);
    }
    b.output("en_r", front.en_r);

    let driven: Vec<_> = r_in.iter().map(|&bit| b.and2(bit, front.fout)).collect();
    b.output_word("bus_out", &driven);
    b.output("drive", front.fout);

    let netlist = b.finish();
    Component {
        kind: ComponentKind::InputSocket,
        netlist,
        width,
        data_in_ports: n_inputs,
        data_out_ports: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::OwnedSeqSim;

    #[test]
    fn input_socket_matches_only_its_id() {
        let c = input_socket(8, 4, 5);
        let mut sim = OwnedSeqSim::new(c.netlist);
        // Wrong id: no capture.
        sim.step_words(&[("bus", 0xAB), ("addr", 3), ("valid", 1)]);
        sim.step_words(&[]);
        assert_eq!(sim.output_words()["enable"], 0);
        assert_eq!(sim.output_words()["data"], 0);
        // Correct id: enable pulses the next cycle while the bus still
        // holds the word (decode takes one cycle, relations (6)-(7)).
        sim.step_words(&[("bus", 0xAB), ("addr", 5), ("valid", 1)]);
        sim.step_words(&[("bus", 0xAB)]);
        assert_eq!(sim.output_words()["enable"], 1);
        assert_eq!(sim.output_words()["data"], 0xAB);
    }

    #[test]
    fn input_socket_requires_valid() {
        let c = input_socket(8, 4, 5);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("bus", 0xAB), ("addr", 5), ("valid", 0)]);
        sim.step_words(&[]);
        assert_eq!(sim.output_words()["enable"], 0);
    }

    #[test]
    fn output_socket_drives_when_addressed() {
        let c = output_socket(8, 4, 9);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("r_in", 0x5A), ("addr", 9), ("valid", 1)]);
        sim.step_words(&[("r_in", 0x5A)]);
        let o = sim.output_words();
        assert_eq!(o["drive"], 1);
        assert_eq!(o["bus_out"], 0x5A);
    }

    #[test]
    fn output_socket_idle_releases_bus() {
        let c = output_socket(8, 4, 9);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("r_in", 0xFF)]);
        let o = sim.output_words();
        assert_eq!(o["drive"], 0);
        assert_eq!(o["bus_out"], 0, "released bus reads as zero");
    }
}

#[cfg(test)]
mod socket_group_tests {
    use super::*;
    use crate::sim::OwnedSeqSim;

    #[test]
    fn socket_group_fires_like_stage_control() {
        let c = socket_group(8, 2, 4);
        let mut sim = OwnedSeqSim::new(c.netlist.clone());
        // Move to the operand socket (id 1).
        sim.step_words(&[("bus", 0x11), ("addr", 1), ("valid", 1)]);
        // Move to the trigger socket (id 2).
        sim.step_words(&[("bus", 0x22), ("addr", 2), ("valid", 1)]);
        // fin1 pulses one cycle later (decode), fire follows, en_r after.
        sim.step_words(&[]);
        sim.step_words(&[]);
        assert_eq!(sim.output_words()["en_r"], 1);
    }

    #[test]
    fn socket_group_has_control_flip_flops() {
        let c = socket_group(16, 2, 5);
        // fin0, fin1, o_seen, exec, done, fout.
        assert_eq!(c.netlist.dff_count(), 6);
        assert!(c.netlist.validate().is_ok());
    }
}
