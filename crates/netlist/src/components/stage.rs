//! Stage-control FSM of the hybrid-pipelined component (Figure 3).
//!
//! The stage controller enforces the transport-timing relations (2)–(5) of
//! the paper in hardware: an operation fires only when the trigger arrives
//! with (or after) its operand, results appear one cycle later, and
//! consecutive operations of the same FU retire in order.

use crate::builder::NetlistBuilder;
use crate::components::{Component, ComponentKind};

/// Builds the stage-control FSM.
///
/// Interface: inputs `o_loaded`, `t_loaded` (strobes from the input
/// sockets) and `out_ready` (output socket can accept a result); outputs
/// `fire` (operation starts), `en_r` (result register capture), `busy`
/// (an operation is in flight) and `err` (trigger arrived with no operand
/// — a scheduling-protocol violation, relation (2)).
pub fn stage_control() -> Component {
    let mut b = NetlistBuilder::new("stage_ctrl");
    let o_loaded = b.input("o_loaded");
    let t_loaded = b.input("t_loaded");
    let out_ready = b.input("out_ready");

    // o_seen: an operand is waiting (set by o_loaded, cleared on fire).
    let (o_seen_q, o_seen_ff) = b.dff_feedback("o_seen");
    let o_avail = b.or2(o_seen_q, o_loaded);
    let fire = b.and2(t_loaded, o_avail);
    let not_fire = b.not(fire);
    let o_seen_next = b.and2(o_avail, not_fire);
    b.set_dff_d(o_seen_ff, o_seen_next);

    // exec: operation computing this cycle; result captured at next edge.
    let exec = b.dff("exec", fire);
    // done: result waiting in R until the output socket takes it.
    let (done_q, done_ff) = b.dff_feedback("done");
    let taken = b.and2(done_q, out_ready);
    let not_taken = b.not(taken);
    let hold = b.and2(done_q, not_taken);
    let done_next = b.or2(exec, hold);
    b.set_dff_d(done_ff, done_next);

    // err: trigger without operand (latches).
    let (err_q, err_ff) = b.dff_feedback("err");
    let no_operand = b.not(o_avail);
    let bad = b.and2(t_loaded, no_operand);
    let err_next = b.or2(err_q, bad);
    b.set_dff_d(err_ff, err_next);

    let busy = b.or2(exec, done_q);
    b.output("fire", fire);
    b.output("en_r", exec);
    b.output("busy", busy);
    b.output("err", err_q);

    let netlist = b.finish();
    Component {
        kind: ComponentKind::StageControl,
        netlist,
        width: 1,
        data_in_ports: 0,
        data_out_ports: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::OwnedSeqSim;

    #[test]
    fn fires_when_operand_and_trigger_together() {
        let c = stage_control();
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("o_loaded", 1), ("t_loaded", 1)]);
        assert_eq!(sim.output_words()["fire"], 1);
        sim.step_words(&[]);
        assert_eq!(sim.output_words()["en_r"], 1, "result captured next cycle");
    }

    #[test]
    fn operand_can_wait_for_trigger() {
        let c = stage_control();
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("o_loaded", 1)]);
        assert_eq!(sim.output_words()["fire"], 0);
        sim.step_words(&[]); // operand parks in o_seen
        sim.step_words(&[("t_loaded", 1)]);
        assert_eq!(sim.output_words()["fire"], 1);
        assert_eq!(sim.output_words()["err"], 0);
    }

    #[test]
    fn trigger_without_operand_flags_error() {
        let c = stage_control();
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("t_loaded", 1)]);
        sim.step_words(&[]);
        assert_eq!(sim.output_words()["err"], 1, "relation (2) violated");
    }

    #[test]
    fn done_holds_until_output_ready() {
        let c = stage_control();
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("o_loaded", 1), ("t_loaded", 1)]);
        sim.step_words(&[]); // exec
        sim.step_words(&[]); // done latched
        assert_eq!(sim.output_words()["busy"], 1);
        sim.step_words(&[("out_ready", 1)]); // result taken
        sim.step_words(&[]);
        assert_eq!(sim.output_words()["busy"], 0);
    }
}
