//! Structural generators for every datapath component of the paper's TTA
//! template (Figure 9): ALU, comparator, multiplier, register files,
//! load/store unit, program counter, immediate unit, and the socket /
//! stage-control infrastructure of Figures 3–4.
//!
//! Each generator returns a [`Component`]: a gate-level [`Netlist`]
//! following the hybrid-pipelining structure of Figure 3 — operand (O) and
//! trigger (T) input registers, a combinational core, and a result (R)
//! register — plus interface metadata the architecture model needs
//! (connector counts, pipeline register split).
//!
//! Flip-flop naming convention: storage flip-flops of register files are
//! named `store…`; all other flip-flops (O/T/R pipeline registers, socket
//! `Fin`/`Fout`, stage-control state, opcode registers) count as *transport
//! infrastructure* and form the socket scan chains of the paper's eq. (13).

mod alu;
mod cmp;
mod immediate;
mod ldst;
mod mul;
mod pc;
mod regfile;
pub(crate) mod socket;
mod stage;

pub use alu::{alu, AluOp};
pub use cmp::{cmp, CmpOp};
pub use immediate::immediate;
pub use ldst::load_store;
pub use mul::mul;
pub use pc::pc;
pub use regfile::register_file;
pub use socket::{input_socket, output_socket, socket_group};
pub use stage::stage_control;

use std::fmt;

use crate::netlist::Netlist;

/// The kind of a generated datapath component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// Arithmetic-logic unit: add, sub, shifts, and, or, xor, not.
    Alu,
    /// Magnitude/equality comparator.
    Cmp,
    /// Array multiplier (low half).
    Mul,
    /// Register file with `regs` registers, `nin` write and `nout` read
    /// ports (flip-flop implementation).
    RegisterFile {
        /// Number of registers.
        regs: u16,
        /// Write (input) ports.
        nin: u8,
        /// Read (output) ports.
        nout: u8,
    },
    /// Load/store unit towards data memory.
    LoadStore,
    /// Program counter / sequencer.
    Pc,
    /// Immediate operand unit.
    Immediate,
    /// Input socket (bus → component), Figure 4.
    InputSocket,
    /// Output socket (component → bus).
    OutputSocket,
    /// Stage-control FSM of the hybrid pipeline, Figure 3.
    StageControl,
}

impl ComponentKind {
    /// Short mnemonic as used in the paper's Table 1.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            ComponentKind::Alu => "ALU",
            ComponentKind::Cmp => "CMP",
            ComponentKind::Mul => "MUL",
            ComponentKind::RegisterFile { .. } => "RF",
            ComponentKind::LoadStore => "LD/ST",
            ComponentKind::Pc => "PC",
            ComponentKind::Immediate => "IMM",
            ComponentKind::InputSocket => "ISOCK",
            ComponentKind::OutputSocket => "OSOCK",
            ComponentKind::StageControl => "STAGE",
        }
    }

    /// Whether this component is datapath (tested functionally through the
    /// buses) rather than transport infrastructure (tested via scan).
    pub fn is_datapath(&self) -> bool {
        !matches!(
            self,
            ComponentKind::InputSocket | ComponentKind::OutputSocket | ComponentKind::StageControl
        )
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A generated component: netlist plus the interface facts the
/// architecture and test-cost models consume.
#[derive(Debug, Clone)]
pub struct Component {
    /// What this component is.
    pub kind: ComponentKind,
    /// The gate-level implementation.
    pub netlist: Netlist,
    /// Data width in bits.
    pub width: usize,
    /// Number of input-side data connectors (operand/trigger/write ports).
    pub data_in_ports: usize,
    /// Number of output-side data connectors (result/read ports).
    pub data_out_ports: usize,
}

impl Component {
    /// Total connector count `nconn` of the paper's eq. (11).
    pub fn nconn(&self) -> usize {
        self.data_in_ports + self.data_out_ports
    }

    /// Number of *storage* flip-flops (register-file core).
    pub fn storage_ff_count(&self) -> usize {
        self.netlist
            .dffs()
            .iter()
            .filter(|ff| ff.name().starts_with("store"))
            .count()
    }

    /// Number of transport-infrastructure flip-flops: pipeline registers
    /// (O/T/R), socket `Fin`/`Fout`, opcode and stage-control state.
    ///
    /// This is the socket scan-chain length `nl` of the paper's eq. (13).
    pub fn infrastructure_ff_count(&self) -> usize {
        self.netlist.dff_count() - self.storage_ff_count()
    }

    /// Cell area in NAND2 equivalents.
    pub fn area(&self) -> f64 {
        self.netlist.area()
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}-bit, {} in / {} out ports, {:.0} GE, {} FFs)",
            self.kind,
            self.width,
            self.data_in_ports,
            self.data_out_ports,
            self.area(),
            self.netlist.dff_count()
        )
    }
}

/// Number of address bits needed for `n` registers (at least 1).
pub(crate) fn addr_bits(n: usize) -> usize {
    debug_assert!(n >= 1);
    usize::BITS as usize - (n - 1).leading_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_bits_rounds_up() {
        assert_eq!(addr_bits(2), 1);
        assert_eq!(addr_bits(3), 2);
        assert_eq!(addr_bits(8), 3);
        assert_eq!(addr_bits(9), 4);
        assert_eq!(addr_bits(12), 4);
    }

    #[test]
    fn every_generator_produces_valid_netlists() {
        let comps = [
            alu(8),
            cmp(8),
            mul(8),
            register_file(8, 8, 1, 2),
            load_store(8),
            pc(8),
            immediate(8),
            input_socket(8, 4, 5),
            output_socket(8, 4, 6),
            stage_control(),
        ];
        for c in &comps {
            assert_eq!(c.netlist.validate(), Ok(()), "{}", c.kind);
            assert!(c.area() > 0.0, "{}", c.kind);
        }
    }

    #[test]
    fn datapath_classification() {
        assert!(ComponentKind::Alu.is_datapath());
        assert!(!ComponentKind::InputSocket.is_datapath());
        assert!(!ComponentKind::StageControl.is_datapath());
    }
}
