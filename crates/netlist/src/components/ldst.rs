//! Load/store unit towards the data memory (Figure 9).
//!
//! The paper excludes LD/ST (and PC) from the test-cost *comparison*
//! because they appear exactly once in every architecture, but their
//! netlists still contribute area and are tested; Table 1 reports their
//! full-scan pattern counts in parentheses.

use crate::builder::NetlistBuilder;
use crate::components::{Component, ComponentKind};

/// Builds a `width`-bit load/store unit.
///
/// Interface:
///
/// * `addr_in` + `en_addr` — operand move carrying the memory address
///   (O register);
/// * `data_in` + `en_data` — trigger move carrying store data (T register;
///   a load is triggered with `is_store = 0`);
/// * `is_store` — direction, captured with the trigger;
/// * `mem_rdata` — read data returning from memory;
/// * outputs `mem_addr`, `mem_wdata`, `mem_we` towards memory and `r`
///   (load result register towards the output socket).
///
/// A two-state access FSM (`idle → access → idle`) paces the memory
/// handshake, mirroring the stage control of Figure 3.
pub fn load_store(width: usize) -> Component {
    assert!((2..=64).contains(&width), "LD/ST width out of range");
    let mut b = NetlistBuilder::new(format!("ldst{width}"));
    let addr_in = b.input_word("addr_in", width);
    let data_in = b.input_word("data_in", width);
    let en_addr = b.input("en_addr");
    let en_data = b.input("en_data");
    let is_store = b.input("is_store");
    let mem_rdata = b.input_word("mem_rdata", width);

    // O register: address.
    let (a_q, a_ff) = b.dff_word_feedback("o_addr", width);
    let a_next = b.mux_word(en_addr, &a_q, &addr_in);
    b.set_dff_word_d(&a_ff, &a_next);

    // T register: store data + direction flag.
    let (d_q, d_ff) = b.dff_word_feedback("t_data", width);
    let d_next = b.mux_word(en_data, &d_q, &data_in);
    b.set_dff_word_d(&d_ff, &d_next);

    let (dir_q, dir_ff) = b.dff_feedback("t_dir");
    let dir_next = b.mux2(en_data, dir_q, is_store);
    b.set_dff_d(dir_ff, dir_next);

    // Access FSM: state0 = idle/busy.
    let (busy_q, busy_ff) = b.dff_feedback("fsm_busy");
    let start = {
        let not_busy = b.not(busy_q);
        b.and2(en_data, not_busy)
    };
    // busy <- start (1-cycle memory access).
    b.set_dff_d(busy_ff, start);
    let done = b.dff("fsm_done", busy_q);

    // Load result register: captures mem_rdata when a load completes.
    let is_load = b.not(dir_q);
    let capture = b.and2(busy_q, is_load);
    let (r_q, r_ff) = b.dff_word_feedback("r", width);
    let r_next = b.mux_word(capture, &r_q, &mem_rdata);
    b.set_dff_word_d(&r_ff, &r_next);

    // Memory-side outputs.
    b.output_word("mem_addr", &a_q);
    b.output_word("mem_wdata", &d_q);
    let we = b.and2(busy_q, dir_q);
    b.output("mem_we", we);
    b.output("done", done);
    b.output_word("r", &r_q);

    let netlist = b.finish();
    Component {
        kind: ComponentKind::LoadStore,
        netlist,
        width,
        data_in_ports: 2,
        data_out_ports: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::OwnedSeqSim;

    #[test]
    fn store_drives_memory_interface() {
        let c = load_store(16);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("addr_in", 0x40), ("en_addr", 1)]);
        sim.step_words(&[("data_in", 0xCAFE), ("en_data", 1), ("is_store", 1)]);
        // Access cycle: we asserted, address/data stable.
        sim.step_words(&[]);
        let o = sim.output_words();
        assert_eq!(o["mem_we"], 1);
        assert_eq!(o["mem_addr"], 0x40);
        assert_eq!(o["mem_wdata"], 0xCAFE);
        // Back to idle.
        sim.step_words(&[]);
        assert_eq!(sim.output_words()["mem_we"], 0);
    }

    #[test]
    fn load_captures_read_data() {
        let c = load_store(16);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("addr_in", 0x10), ("en_addr", 1)]);
        // Trigger a load (is_store = 0).
        sim.step_words(&[("en_data", 1), ("is_store", 0)]);
        // Memory responds during the busy cycle.
        sim.step_words(&[("mem_rdata", 0x1234)]);
        sim.step_words(&[]);
        assert_eq!(sim.output_words()["r"], 0x1234);
        assert_eq!(sim.output_words()["done"], 1);
    }

    #[test]
    fn load_does_not_write_memory() {
        let c = load_store(8);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("addr_in", 1), ("en_addr", 1)]);
        sim.step_words(&[("en_data", 1), ("is_store", 0)]);
        sim.step_words(&[("mem_rdata", 9)]);
        assert_eq!(sim.output_words()["mem_we"], 0);
    }
}
