//! The ALU of the paper's selected architecture (Figure 9): addition,
//! subtraction, shifts and basic logic (AND, OR, XOR), hybrid-pipelined
//! per Figure 3 (operand register O, trigger register T, result register R).

use crate::builder::NetlistBuilder;
use crate::components::{Component, ComponentKind};

/// Operations of the generated ALU, encoded in the 3-bit opcode register.
///
/// The opcode travels with the trigger move (it is part of the destination
/// socket address in a real MOVE machine) and is captured in an opcode
/// register alongside T.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `o + t`
    Add = 0,
    /// `o - t`
    Sub = 1,
    /// `o << t` (logical, amount = low bits of t)
    Shl = 2,
    /// `o >> t` (logical)
    Shr = 3,
    /// `o & t`
    And = 4,
    /// `o | t`
    Or = 5,
    /// `o ^ t`
    Xor = 6,
    /// `!o` (bitwise complement; t ignored)
    Not = 7,
}

impl AluOp {
    /// All operations in opcode order.
    pub const ALL: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Not,
    ];

    /// The 3-bit opcode.
    pub fn code(self) -> u64 {
        self as u64
    }

    /// Reference (golden-model) semantics at `width` bits.
    ///
    /// Shift amounts use the low `log2(width)` bits of `t`, matching the
    /// generated barrel shifter.
    pub fn eval(self, o: u64, t: u64, width: u32) -> u64 {
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        };
        let shamt = t & (width as u64 - 1);
        let r = match self {
            AluOp::Add => o.wrapping_add(t),
            AluOp::Sub => o.wrapping_sub(t),
            AluOp::Shl => o << shamt,
            AluOp::Shr => (o & mask) >> shamt,
            AluOp::And => o & t,
            AluOp::Or => o | t,
            AluOp::Xor => o ^ t,
            AluOp::Not => !o,
        };
        r & mask
    }
}

/// Builds a `width`-bit ALU component.
///
/// Interface (all data widths = `width`):
///
/// * inputs `o_in`, `t_in` — operand and trigger data from the input
///   sockets; `en_o`, `en_t` — load strobes; `op[3]` — opcode captured
///   with the trigger;
/// * output `r` — the result register, feeding the output socket.
///
/// The result register loads one cycle after the trigger strobe
/// (relation (3) of the paper: `Ci(R) − Ci(T) ≥ 1`).
///
/// # Panics
///
/// Panics if `width` is not a power of two in `4..=32` (the shifter needs
/// a power-of-two width).
pub fn alu(width: usize) -> Component {
    assert!(
        width.is_power_of_two() && (4..=32).contains(&width),
        "ALU width must be a power of two in 4..=32, got {width}"
    );
    let mut b = NetlistBuilder::new(format!("alu{width}"));
    let o_in = b.input_word("o_in", width);
    let t_in = b.input_word("t_in", width);
    let en_o = b.input("en_o");
    let en_t = b.input("en_t");
    let op_in = b.input_word("op", 3);

    // O / T / opcode pipeline registers with load enables.
    let (o_q, o_ff) = b.dff_word_feedback("o", width);
    let o_next = b.mux_word(en_o, &o_q, &o_in);
    b.set_dff_word_d(&o_ff, &o_next);

    let (t_q, t_ff) = b.dff_word_feedback("t", width);
    let t_next = b.mux_word(en_t, &t_q, &t_in);
    b.set_dff_word_d(&t_ff, &t_next);

    let (op_q, op_ff) = b.dff_word_feedback("opc", 3);
    let op_next = b.mux_word(en_t, &op_q, &op_in);
    b.set_dff_word_d(&op_ff, &op_next);

    // Trigger valid: R captures the core output the cycle after en_t.
    let v = b.dff("v", en_t);

    // --- combinational core ------------------------------------------------
    // Add/sub share one adder (op bit 0 selects subtract when op[2:1]=00).
    let is_arith_sub = {
        let n1 = b.not(op_q[1]);
        let n2 = b.not(op_q[2]);
        let arith = b.and2(n1, n2);
        b.and2(arith, op_q[0])
    };
    let addsub = b.add_sub_wrap(&o_q, &t_q, is_arith_sub);

    // Shifter: direction = op[0] (Shl=2 -> op0=0 means left; careful:
    // Shl code 2 = 0b010 -> op0=0; Shr code 3 = 0b011 -> op0=1).
    let left = b.not(op_q[0]);
    let shbits = width.trailing_zeros() as usize;
    let shamt: Vec<_> = t_q[..shbits].to_vec();
    let shifted = b.barrel_shift(&o_q, &shamt, left);

    let and_w = b.and_word(&o_q, &t_q);
    let or_w = b.or_word(&o_q, &t_q);
    let xor_w = b.xor_word(&o_q, &t_q);
    let not_w = b.not_word(&o_q);

    // Opcode select. op[0] is already consumed inside the adder (sub) and
    // shifter (direction), so the outer tree selects on op[2:1] only —
    // duplicating legs would create combinationally redundant (untestable)
    // select faults and distort the back-annotated pattern counts.
    let and_or = b.mux_word(op_q[0], &and_w, &or_w);
    let xor_not = b.mux_word(op_q[0], &xor_w, &not_w);
    let group = vec![addsub, shifted, and_or, xor_not];
    let core = b.mux_tree(&op_q[1..3], &group);

    // Result register (loads when v).
    let (r_q, r_ff) = b.dff_word_feedback("r", width);
    let r_next = b.mux_word(v, &r_q, &core);
    b.set_dff_word_d(&r_ff, &r_next);
    b.output_word("r", &r_q);

    let netlist = b.finish();
    Component {
        kind: ComponentKind::Alu,
        netlist,
        width,
        data_in_ports: 2,
        data_out_ports: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::OwnedSeqSim;

    /// Drives one complete operation through the pipelined ALU and returns
    /// the value of R.
    fn run_op(sim: &mut OwnedSeqSim, op: AluOp, o: u64, t: u64) -> u64 {
        // Cycle 1: load O and T together (relation (2) with equality).
        sim.step_words(&[
            ("o_in", o),
            ("t_in", t),
            ("en_o", 1),
            ("en_t", 1),
            ("op", op.code()),
        ]);
        // Cycle 2: v=1, core computes from registered O/T; R loads at edge.
        sim.step_words(&[]);
        // Cycle 3: R visible at outputs.
        sim.step_words(&[]);
        sim.output_words()["r"]
    }

    #[test]
    fn alu_matches_golden_model_exhaustively_small() {
        let c = alu(4);
        let mut sim = OwnedSeqSim::new(c.netlist);
        for op in AluOp::ALL {
            for o in 0..16u64 {
                for t in 0..16u64 {
                    let got = run_op(&mut sim, op, o, t);
                    let want = op.eval(o, t, 4);
                    assert_eq!(got, want, "{op:?} o={o} t={t}");
                }
            }
        }
    }

    #[test]
    fn alu16_selected_cases() {
        let c = alu(16);
        let mut sim = OwnedSeqSim::new(c.netlist);
        let cases = [
            (AluOp::Add, 0xFFFF, 1, 0),
            (AluOp::Sub, 5, 7, 0xFFFE),
            (AluOp::Shl, 0x00FF, 4, 0x0FF0),
            (AluOp::Shr, 0x8000, 15, 0x0001),
            (AluOp::And, 0xF0F0, 0xFF00, 0xF000),
            (AluOp::Or, 0xF0F0, 0x0F00, 0xFFF0),
            (AluOp::Xor, 0xAAAA, 0xFFFF, 0x5555),
            (AluOp::Not, 0x1234, 0, 0xEDCB),
        ];
        for (op, o, t, want) in cases {
            assert_eq!(run_op(&mut sim, op, o, t), want, "{op:?}");
        }
    }

    #[test]
    fn operand_can_arrive_before_trigger() {
        // Relation (2): C(T) - C(O) >= 0 — operand first is legal.
        let c = alu(8);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("o_in", 40), ("en_o", 1)]);
        sim.step_words(&[("t_in", 2), ("en_t", 1), ("op", AluOp::Add.code())]);
        sim.step_words(&[]);
        sim.step_words(&[]);
        assert_eq!(sim.output_words()["r"], 42);
    }

    #[test]
    fn result_holds_until_next_trigger() {
        let c = alu(8);
        let mut sim = OwnedSeqSim::new(c.netlist);
        let r1 = run_op(&mut sim, AluOp::Add, 1, 2);
        // Idle cycles do not disturb R.
        sim.step_words(&[]);
        sim.step_words(&[]);
        assert_eq!(sim.output_words()["r"], r1);
    }

    #[test]
    fn component_metadata() {
        let c = alu(16);
        assert_eq!(c.nconn(), 3);
        assert_eq!(c.width, 16);
        assert_eq!(c.storage_ff_count(), 0);
        // O + T + R + opcode + valid
        assert_eq!(c.infrastructure_ff_count(), 16 * 3 + 3 + 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_width() {
        let _ = alu(12);
    }
}
