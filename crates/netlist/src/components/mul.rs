//! Array multiplier functional unit (the MOVE FU library also contains
//! multipliers, see the paper's Figure 1 caption).

use crate::builder::NetlistBuilder;
use crate::components::{Component, ComponentKind};

/// Builds a `width`-bit array multiplier producing the low `width` bits of
/// `o * t`, hybrid-pipelined (O, T, R registers; no opcode — a MUL unit
/// implements a single operation).
pub fn mul(width: usize) -> Component {
    assert!((2..=32).contains(&width), "MUL width out of range");
    let mut b = NetlistBuilder::new(format!("mul{width}"));
    let o_in = b.input_word("o_in", width);
    let t_in = b.input_word("t_in", width);
    let en_o = b.input("en_o");
    let en_t = b.input("en_t");

    let (o_q, o_ff) = b.dff_word_feedback("o", width);
    let o_next = b.mux_word(en_o, &o_q, &o_in);
    b.set_dff_word_d(&o_ff, &o_next);

    let (t_q, t_ff) = b.dff_word_feedback("t", width);
    let t_next = b.mux_word(en_t, &t_q, &t_in);
    b.set_dff_word_d(&t_ff, &t_next);

    let v = b.dff("v", en_t);

    // Truncated array multiply: accumulate shifted partial products,
    // keeping only the low `width` columns.
    let zero = b.const0();
    let mut acc: Vec<_> = o_q.iter().map(|&bit| b.and2(bit, t_q[0])).collect();
    for row in 1..width {
        // Partial product row `row`, truncated to columns row..width.
        let cols = width - row;
        let pp: Vec<_> = o_q[..cols]
            .iter()
            .map(|&bit| b.and2(bit, t_q[row]))
            .collect();
        // acc[row..] += pp (ripple, truncated — carry out of the top is
        // discarded like the high product half).
        let upper: Vec<_> = acc[row..].to_vec();
        let sum = b.ripple_add_wrap(&upper, &pp, zero);
        acc.splice(row.., sum);
    }
    debug_assert_eq!(acc.len(), width);

    let (r_q, r_ff) = b.dff_word_feedback("r", width);
    let r_next = b.mux_word(v, &r_q, &acc);
    b.set_dff_word_d(&r_ff, &r_next);
    b.output_word("r", &r_q);

    let netlist = b.finish();
    Component {
        kind: ComponentKind::Mul,
        netlist,
        width,
        data_in_ports: 2,
        data_out_ports: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::OwnedSeqSim;

    fn run_mul(sim: &mut OwnedSeqSim, o: u64, t: u64) -> u64 {
        sim.step_words(&[("o_in", o), ("t_in", t), ("en_o", 1), ("en_t", 1)]);
        sim.step_words(&[]);
        sim.step_words(&[]);
        sim.output_words()["r"]
    }

    #[test]
    fn mul_exhaustive_4bit() {
        let c = mul(4);
        let mut sim = OwnedSeqSim::new(c.netlist);
        for o in 0..16u64 {
            for t in 0..16u64 {
                assert_eq!(run_mul(&mut sim, o, t), (o * t) & 0xF, "{o}*{t}");
            }
        }
    }

    #[test]
    fn mul_16bit_cases() {
        let c = mul(16);
        let mut sim = OwnedSeqSim::new(c.netlist);
        for (o, t) in [(3, 5), (255, 255), (0xFFFF, 2), (1234, 43), (0, 999)] {
            assert_eq!(run_mul(&mut sim, o, t), (o * t) & 0xFFFF, "{o}*{t}");
        }
    }

    #[test]
    fn multiplier_is_the_big_fu() {
        // Sanity for the area model: MUL should dwarf the ALU.
        let m = mul(16);
        let a = crate::components::alu(16);
        assert!(m.area() > a.area());
    }
}
