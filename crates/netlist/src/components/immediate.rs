//! Immediate unit (Figure 9): delivers instruction-encoded constants onto
//! the move buses.

use crate::builder::NetlistBuilder;
use crate::components::{Component, ComponentKind};

/// Builds a `width`-bit immediate unit: a single register loaded from the
/// instruction word (`imm_in` + `en`) whose output feeds a bus socket.
pub fn immediate(width: usize) -> Component {
    assert!((2..=64).contains(&width), "IMM width out of range");
    let mut b = NetlistBuilder::new(format!("imm{width}"));
    let imm_in = b.input_word("imm_in", width);
    let en = b.input("en");
    let (q, ff) = b.dff_word_feedback("r", width);
    let next = b.mux_word(en, &q, &imm_in);
    b.set_dff_word_d(&ff, &next);
    b.output_word("imm_out", &q);
    let netlist = b.finish();
    Component {
        kind: ComponentKind::Immediate,
        netlist,
        width,
        data_in_ports: 1,
        data_out_ports: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::OwnedSeqSim;

    #[test]
    fn loads_and_holds() {
        let c = immediate(16);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("imm_in", 0x7ABC), ("en", 1)]);
        sim.step_words(&[("imm_in", 0x1111)]); // en low: hold
        assert_eq!(sim.output_words()["imm_out"], 0x7ABC);
        sim.step_words(&[]);
        assert_eq!(sim.output_words()["imm_out"], 0x7ABC);
    }
}
