//! Property-based tests: generated component netlists agree with their
//! golden models on arbitrary inputs.

use proptest::prelude::*;
use tta_netlist::components::{self, AluOp, CmpOp};
use tta_netlist::sim::OwnedSeqSim;

fn run_alu(sim: &mut OwnedSeqSim, op: AluOp, o: u64, t: u64) -> u64 {
    sim.step_words(&[
        ("o_in", o),
        ("t_in", t),
        ("en_o", 1),
        ("en_t", 1),
        ("op", op.code()),
    ]);
    sim.step_words(&[]);
    sim.step_words(&[]);
    sim.output_words()["r"]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alu16_matches_golden(o in 0u64..=0xFFFF, t in 0u64..=0xFFFF, opi in 0usize..8) {
        let op = AluOp::ALL[opi];
        let c = components::alu(16);
        let mut sim = OwnedSeqSim::new(c.netlist);
        prop_assert_eq!(run_alu(&mut sim, op, o, t), op.eval(o, t, 16));
    }

    #[test]
    fn cmp16_matches_golden(o in 0u64..=0xFFFF, t in 0u64..=0xFFFF, opi in 0usize..6) {
        let op = CmpOp::ALL[opi];
        let c = components::cmp(16);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[
            ("o_in", o),
            ("t_in", t),
            ("en_o", 1),
            ("en_t", 1),
            ("op", op.code()),
        ]);
        sim.step_words(&[]);
        sim.step_words(&[]);
        prop_assert_eq!(sim.output_words()["r"], op.eval(o, t, 16));
    }

    #[test]
    fn mul8_matches_wrapping_product(o in 0u64..=0xFF, t in 0u64..=0xFF) {
        let c = components::mul(8);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("o_in", o), ("t_in", t), ("en_o", 1), ("en_t", 1)]);
        sim.step_words(&[]);
        sim.step_words(&[]);
        prop_assert_eq!(sim.output_words()["r"], (o * t) & 0xFF);
    }

    #[test]
    fn rf_read_returns_last_write(
        writes in proptest::collection::vec((0u64..8, 0u64..=0xFF), 1..12),
        read_addr in 0u64..8,
    ) {
        let c = components::register_file(8, 8, 1, 1);
        let mut sim = OwnedSeqSim::new(c.netlist);
        let mut model = [0u64; 8];
        for (addr, data) in &writes {
            sim.step_words(&[("wdata0", *data), ("waddr0", *addr), ("wen0", 1)]);
            sim.step_words(&[]);
            model[*addr as usize] = *data;
        }
        sim.step_words(&[("raddr0", read_addr), ("ren0", 1)]);
        sim.step_words(&[]);
        sim.step_words(&[]);
        prop_assert_eq!(sim.output_words()["rdata0"], model[read_addr as usize]);
    }

    #[test]
    fn alu_idle_cycles_never_disturb_r(o in 0u64..=0xFF, t in 0u64..=0xFF, idle in 0usize..6) {
        let c = components::alu(8);
        let mut sim = OwnedSeqSim::new(c.netlist);
        let r = run_alu(&mut sim, AluOp::Xor, o, t);
        for _ in 0..idle {
            sim.step_words(&[]);
        }
        prop_assert_eq!(sim.output_words()["r"], r);
    }
}
