//! Property-based tests: generated component netlists agree with their
//! golden models on arbitrary inputs, and the analysis passes (timing,
//! fanout) agree with brute-force recomputation on arbitrary component
//! netlists.

use proptest::prelude::*;
use tta_netlist::components::{self, AluOp, CmpOp};
use tta_netlist::netlist::{NetId, Netlist};
use tta_netlist::sim::OwnedSeqSim;
use tta_netlist::timing;

/// One shipped component generator per index — the pool the analysis
/// properties draw arbitrary netlists from.
fn component_netlist(pick: usize, wi: usize) -> Netlist {
    // Power-of-two widths keep every generator in-domain (the ALU's
    // shifter requires one).
    let width = [4usize, 8, 16][wi];
    match pick {
        0 => components::alu(width).netlist,
        1 => components::cmp(width).netlist,
        2 => components::mul(width).netlist,
        3 => components::pc(width.max(2)).netlist,
        4 => components::load_store(width).netlist,
        5 => components::immediate(width).netlist,
        _ => components::register_file(width, 8, 1, 2).netlist,
    }
}

fn run_alu(sim: &mut OwnedSeqSim, op: AluOp, o: u64, t: u64) -> u64 {
    sim.step_words(&[
        ("o_in", o),
        ("t_in", t),
        ("en_o", 1),
        ("en_t", 1),
        ("op", op.code()),
    ]);
    sim.step_words(&[]);
    sim.step_words(&[]);
    sim.output_words()["r"]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alu16_matches_golden(o in 0u64..=0xFFFF, t in 0u64..=0xFFFF, opi in 0usize..8) {
        let op = AluOp::ALL[opi];
        let c = components::alu(16);
        let mut sim = OwnedSeqSim::new(c.netlist);
        prop_assert_eq!(run_alu(&mut sim, op, o, t), op.eval(o, t, 16));
    }

    #[test]
    fn cmp16_matches_golden(o in 0u64..=0xFFFF, t in 0u64..=0xFFFF, opi in 0usize..6) {
        let op = CmpOp::ALL[opi];
        let c = components::cmp(16);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[
            ("o_in", o),
            ("t_in", t),
            ("en_o", 1),
            ("en_t", 1),
            ("op", op.code()),
        ]);
        sim.step_words(&[]);
        sim.step_words(&[]);
        prop_assert_eq!(sim.output_words()["r"], op.eval(o, t, 16));
    }

    #[test]
    fn mul8_matches_wrapping_product(o in 0u64..=0xFF, t in 0u64..=0xFF) {
        let c = components::mul(8);
        let mut sim = OwnedSeqSim::new(c.netlist);
        sim.step_words(&[("o_in", o), ("t_in", t), ("en_o", 1), ("en_t", 1)]);
        sim.step_words(&[]);
        sim.step_words(&[]);
        prop_assert_eq!(sim.output_words()["r"], (o * t) & 0xFF);
    }

    #[test]
    fn rf_read_returns_last_write(
        writes in proptest::collection::vec((0u64..8, 0u64..=0xFF), 1..12),
        read_addr in 0u64..8,
    ) {
        let c = components::register_file(8, 8, 1, 1);
        let mut sim = OwnedSeqSim::new(c.netlist);
        let mut model = [0u64; 8];
        for (addr, data) in &writes {
            sim.step_words(&[("wdata0", *data), ("waddr0", *addr), ("wen0", 1)]);
            sim.step_words(&[]);
            model[*addr as usize] = *data;
        }
        sim.step_words(&[("raddr0", read_addr), ("ren0", 1)]);
        sim.step_words(&[]);
        sim.step_words(&[]);
        prop_assert_eq!(sim.output_words()["rdata0"], model[read_addr as usize]);
    }

    #[test]
    fn arrivals_are_monotone_along_topo_order(pick in 0usize..7, wi in 0usize..3) {
        let nl = component_netlist(pick, wi);
        let arrival = timing::arrival_times(&nl);
        // Every gate's output arrives strictly after each of its inputs
        // (all cell delays are positive), so walking the topo order the
        // arrival profile is monotone along every path.
        for &gid in nl.topo_order() {
            let g = nl.gate(gid);
            let out = arrival[g.output().index()];
            for n in g.inputs() {
                prop_assert!(
                    out > arrival[n.index()],
                    "gate {gid:?}: output arrival {out} not after input {}",
                    arrival[n.index()]
                );
            }
        }
    }

    #[test]
    fn depth_matches_longest_gate_chain(pick in 0usize..7, wi in 0usize..3) {
        let nl = component_netlist(pick, wi);
        // Brute-force DP: a net's level is one more than the deepest
        // net any gate driving it reads.
        let mut level = vec![0u32; nl.net_count()];
        for &gid in nl.topo_order() {
            let g = nl.gate(gid);
            let worst = g.inputs().iter().map(|n| level[n.index()]).max().unwrap_or(0);
            level[g.output().index()] = worst + 1;
        }
        let deepest = level.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(timing::analyze(&nl).depth, deepest);
    }

    #[test]
    fn fanout_table_agrees_with_brute_force_reader_scan(pick in 0usize..7, wi in 0usize..3) {
        let nl = component_netlist(pick, wi);
        let fanout = nl.fanout_table();
        // Recount every net's readers the slow way: gate input pins,
        // flip-flop D pins, plus one tap when the net is a primary
        // output (however many output ports alias it).
        let mut counts = vec![0usize; nl.net_count()];
        for g in nl.gates() {
            for n in g.inputs() {
                counts[n.index()] += 1;
            }
        }
        for ff in nl.dffs() {
            counts[ff.d().index()] += 1;
        }
        let mut is_po = vec![false; nl.net_count()];
        for (_, n) in nl.primary_outputs() {
            is_po[n.index()] = true;
        }
        for (i, po) in is_po.iter().enumerate() {
            counts[i] += usize::from(*po);
        }
        for (i, &expected) in counts.iter().enumerate() {
            prop_assert_eq!(
                fanout.reader_count(NetId::from_index(i)),
                expected,
                "net {i}"
            );
        }
    }

    #[test]
    fn alu_idle_cycles_never_disturb_r(o in 0u64..=0xFF, t in 0u64..=0xFF, idle in 0usize..6) {
        let c = components::alu(8);
        let mut sim = OwnedSeqSim::new(c.netlist);
        let r = run_alu(&mut sim, AluOp::Xor, o, t);
        for _ in 0..idle {
            sim.step_words(&[]);
        }
        prop_assert_eq!(sim.output_words()["r"], r);
    }
}
