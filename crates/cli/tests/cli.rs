//! End-to-end CLI tests through `ttadse_cli::run`: the warm-cache
//! byte-identity contract, resume accounting, and cache management.

use std::fs;
use std::path::PathBuf;

use ttadse_cli::run;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ttadse-cli-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn run_ok(args: &[&str]) -> (String, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let mut err = Vec::new();
    run(&args, &mut out, &mut err).unwrap_or_else(|e| panic!("{args:?}: {e}"));
    (
        String::from_utf8(out).expect("stdout utf-8"),
        String::from_utf8(err).expect("stderr utf-8"),
    )
}

#[test]
fn warm_cache_json_is_byte_identical_and_all_hits() {
    let dir = tmpdir("explore");
    let cache_dir = dir.to_str().expect("utf-8 temp path");
    let explore = [
        "explore",
        "--space",
        "tiny",
        "--rounds",
        "1",
        "--serial",
        "--format",
        "json",
        "--cache-dir",
        cache_dir,
    ];
    let (cold_out, cold_err) = run_ok(&explore);
    assert!(cold_out.starts_with('{'), "one JSON document: {cold_out}");
    assert!(cold_err.contains("misses"), "{cold_err}");

    // Second run: resumable, every point a hit, stdout byte-identical.
    let mut resumed: Vec<&str> = explore.to_vec();
    resumed.push("--resume");
    let (warm_out, warm_err) = run_ok(&resumed);
    assert_eq!(cold_out, warm_out, "stdout must be byte-identical");
    assert!(warm_err.contains("resuming:"), "{warm_err}");
    assert!(warm_err.contains("0 misses"), "{warm_err}");

    // The cache subcommand sees the same file…
    let (stats, _) = run_ok(&[
        "cache",
        "stats",
        "--cache-dir",
        cache_dir,
        "--format",
        "json",
    ]);
    assert!(stats.contains("\"exists\":true"), "{stats}");
    // …and clears it.
    let (cleared, _) = run_ok(&["cache", "clear", "--cache-dir", cache_dir]);
    assert!(cleared.contains("cleared"), "{cleared}");
    let (stats, _) = run_ok(&[
        "cache",
        "stats",
        "--cache-dir",
        cache_dir,
        "--format",
        "json",
    ]);
    assert!(stats.contains("\"entries\":0"), "{stats}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn seeded_random_search_is_deterministic_and_budgeted() {
    let base = [
        "explore",
        "--space",
        "fast",
        "--rounds",
        "1",
        "--workload",
        "checksum32",
        "--strategy",
        "random",
        "--budget",
        "4",
        "--seed",
        "42",
        "--format",
        "json",
    ];
    let (a, _) = run_ok(&base);
    let (b, _) = run_ok(&base);
    assert_eq!(a, b, "same seed must be byte-identical");
    assert!(
        a.contains("\"search\":{\"strategy\":\"random\",\"budget\":4,\"seed\":42"),
        "{a}"
    );
    // At most `budget` points visited.
    let evals = a
        .split("\"evaluations\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse::<usize>().ok())
        .expect("evaluations field");
    assert!(evals <= 4, "{evals}");

    let mut other_seed: Vec<&str> = base.to_vec();
    let n = other_seed.len();
    other_seed[n - 3] = "7";
    let (c, _) = run_ok(&other_seed);
    assert_ne!(a, c, "a different seed samples a different subset");
}

#[test]
fn unknown_strategy_is_a_usage_error() {
    let args: Vec<String> = ["explore", "--strategy", "simulated-annealing"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = Vec::new();
    let mut err = Vec::new();
    let e = run(&args, &mut out, &mut err).unwrap_err();
    assert_eq!(e.exit_code, 2);
    assert!(e.message.contains("simulated-annealing"), "{}", e.message);
}

#[test]
fn csv_and_table_render_the_same_sweep() {
    let dir = tmpdir("formats");
    let cache_dir = dir.to_str().expect("utf-8 temp path");
    let base = [
        "explore",
        "--space",
        "tiny",
        "--rounds",
        "1",
        "--cache-dir",
        cache_dir,
    ];
    let (csv, _) = run_ok(&[&base[..], &["--format", "csv"]].concat());
    let mut lines = csv.lines();
    let meta = lines.next().expect("strategy metadata comment");
    assert!(
        meta.starts_with("# strategy=exhaustive"),
        "metadata line: {meta}"
    );
    // One breakdown comment per suite member rides along.
    let breakdown = lines.next().expect("workload breakdown comment");
    assert!(
        breakdown.starts_with("# workload=crypt[1r] weight=1 blocked="),
        "breakdown line: {breakdown}"
    );
    assert_eq!(
        lines.next(),
        Some("architecture,area,exec_time,cycles,spills,on_front,test_cost,cycles:crypt[1r]")
    );
    let rows = lines.count();
    let (table, _) = run_ok(&[&base[..], &["--format", "table"]].concat());
    assert!(
        table.contains(&format!("explored {rows} feasible points")),
        "table and csv must agree: {table}"
    );
    assert!(table.contains("per-workload breakdown:"), "{table}");
    assert!(table.contains("selected (equal-weight Euclid):"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn weighted_suite_runs_report_breakdowns_and_stay_deterministic() {
    // A weighted multi-workload suite: serial and parallel runs must be
    // byte-identical, and every output format carries the breakdown.
    let base = [
        "explore",
        "--space",
        "tiny",
        "--workload",
        "checksum32:3,bitcount",
        "--format",
        "json",
    ];
    let (serial, _) = run_ok(&[&base[..], &["--serial"]].concat());
    let (parallel, _) = run_ok(&[&base[..], &["--parallel"]].concat());
    assert_eq!(
        serial, parallel,
        "weighted sweep must not depend on threads"
    );
    assert!(
        serial.contains("\"name\":\"checksum32\",\"weight\":3.0,\"blocked\":"),
        "{serial}"
    );
    assert!(serial.contains("\"workload_cycles\":["), "{serial}");
}

#[test]
fn suite_flag_and_workloads_subcommand_agree_on_names() {
    // `--suite dsp` resolves through the registry…
    let (json_out, _) = run_ok(&[
        "explore", "--space", "tiny", "--suite", "control", "--format", "json",
    ]);
    assert!(json_out.contains("\"name\":\"viterbi[4s]\""), "{json_out}");
    // …and the listing subcommand shows the same suite composition.
    let (list, _) = run_ok(&["workloads", "--format", "csv"]);
    assert!(list.contains("control,viterbi,4"), "{list}");
    assert!(list.contains("dsp,fft,4"), "{list}");
}

#[test]
fn unknown_workloads_and_suites_name_the_registry() {
    let args: Vec<String> = ["explore", "--workload", "mp3"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = Vec::new();
    let mut err = Vec::new();
    let e = run(&args, &mut out, &mut err).unwrap_err();
    assert_eq!(e.exit_code, 2);
    // The candidate list is derived from the registry, so new
    // workloads can never drift out of the error text.
    for name in ["crypt", "fft", "viterbi", "dsp"] {
        assert!(e.message.contains(name), "{}: {}", name, e.message);
    }

    let args: Vec<String> = ["workloads", "compare", "--suites", "media"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let e = run(&args, &mut Vec::new(), &mut Vec::new()).unwrap_err();
    assert_eq!(e.exit_code, 2);
    assert!(e.message.contains("paper"), "{}", e.message);
}

#[test]
fn repeated_explicit_workloads_are_rejected_not_compounded() {
    // `--workload fft:2 --workload fft:3` used to fold into one member
    // with a silently compounded weight; now it is a loud usage error.
    for args in [
        vec![
            "explore",
            "--space",
            "tiny",
            "--workload",
            "fft:2",
            "--workload",
            "fft:3",
        ],
        vec!["explore", "--space", "tiny", "--workload", "fft,fft"],
        vec!["explore", "--space", "tiny", "--workload", "crypt:2,crypt"],
        // Repeated *suite* names in --workload position would duplicate
        // every member with compounding weights — same rejection.
        vec![
            "explore",
            "--space",
            "tiny",
            "--workload",
            "dsp:2",
            "--workload",
            "dsp:3",
        ],
        vec!["explore", "--space", "tiny", "--workload", "dsp,dsp"],
    ] {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let e = run(&args, &mut Vec::new(), &mut Vec::new()).unwrap_err();
        assert_eq!(e.exit_code, 2, "{args:?}");
        assert!(e.message.contains("more than once"), "{}", e.message);
    }
}

#[test]
fn suite_and_explicit_workload_overlap_is_rejected() {
    // A workload reached both via a suite and via an explicit spec
    // would be scheduled twice with compounding weights — rejected in
    // either argument order, and whichever way the suite arrived.
    for args in [
        vec![
            "explore",
            "--space",
            "tiny",
            "--suite",
            "dsp",
            "--workload",
            "fft:2",
        ],
        vec![
            "explore",
            "--space",
            "tiny",
            "--workload",
            "fft",
            "--workload",
            "dsp",
        ],
        vec![
            "explore",
            "--space",
            "tiny",
            "--suite",
            "dsp",
            "--workload",
            "dsp:2",
        ],
    ] {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let e = run(&args, &mut Vec::new(), &mut Vec::new()).unwrap_err();
        assert_eq!(e.exit_code, 2, "{args:?}");
        assert!(e.message.contains("dsp"), "{}", e.message);
    }
}

#[test]
fn suite_scaling_in_workload_position_stays_multiplicative() {
    // `--workload dsp:2` scales every member of the dsp suite (fft
    // carries weight 4 there, so it lands at 8) — documented behaviour,
    // distinct from repeating an explicit workload.
    let (json_out, _) = run_ok(&[
        "explore",
        "--space",
        "tiny",
        "--workload",
        "dsp:2",
        "--format",
        "json",
    ]);
    assert!(
        json_out.contains("\"name\":\"fft[8p]\",\"weight\":8.0"),
        "{json_out}"
    );
}

#[test]
fn full_lift_is_deterministic_and_carries_the_test_axis_everywhere() {
    let dir = tmpdir("full-lift");
    let cache_dir = dir.to_str().expect("utf-8 temp path");
    let base = [
        "explore",
        "--space",
        "tiny",
        "--rounds",
        "1",
        "--lift",
        "full",
        "--format",
        "csv",
        "--cache-dir",
        cache_dir,
    ];
    let (cold, _) = run_ok(&base);
    let meta = cold.lines().next().expect("metadata comment");
    assert!(meta.contains("lift=full"), "{meta}");
    // Every feasible row carries a test cost (the column before the
    // per-workload cycles is non-empty).
    for row in cold.lines().filter(|l| !l.starts_with('#')).skip(1) {
        let cols: Vec<&str> = row.split(',').collect();
        assert!(!cols[6].is_empty(), "full lift must cost every row: {row}");
    }
    // Warm v3 cache: byte-identical, all hits.
    let (warm, warm_err) = run_ok(&base);
    assert_eq!(cold, warm, "warm full-lift run must be byte-identical");
    assert!(warm_err.contains("0 misses"), "{warm_err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn scan_test_model_is_selectable_and_reported() {
    let (json_out, _) = run_ok(&[
        "explore",
        "--space",
        "tiny",
        "--lift",
        "full",
        "--test-model",
        "scan",
        "--format",
        "json",
    ]);
    assert!(json_out.contains("\"lift\":\"full\""), "{json_out}");
    assert!(json_out.contains("\"test_model\":\"scan\""), "{json_out}");

    for (flag, bad) in [("--lift", "3d"), ("--test-model", "bist")] {
        let args: Vec<String> = ["explore", flag, bad]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = run(&args, &mut Vec::new(), &mut Vec::new()).unwrap_err();
        assert_eq!(e.exit_code, 2, "{flag} {bad}");
        assert!(e.message.contains(bad), "{}", e.message);
    }
}

#[test]
fn figure_commands_warn_when_the_cache_cannot_persist() {
    let dir = tmpdir("flush-warn");
    // Wedge a directory where the cache file must land: the sweep
    // completes but the flush's atomic rename fails (even as root).
    fs::create_dir_all(dir.join(tta_core::cache::CACHE_FILE_NAME)).unwrap();
    let (out, err) = run_ok(&["fig2", "--fast", "--cache-dir", dir.to_str().unwrap()]);
    assert!(err.contains("could not be persisted"), "{err}");
    assert!(!out.contains("warning"), "stdout must stay clean: {out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fig8_full_reports_the_comparison() {
    let (json_out, _) = run_ok(&["fig8", "--full", "--fast", "--format", "json"]);
    assert!(json_out.contains("\"figure\":\"fig8-full\""), "{json_out}");
    assert!(json_out.contains("\"design_front\":"), "{json_out}");
    assert!(
        json_out.contains("\"missed_by_pareto_lift\":"),
        "{json_out}"
    );
    let (table, _) = run_ok(&["fig8", "--full", "--fast"]);
    assert!(table.contains("true 3-D front"), "{table}");
}

#[test]
fn bad_workload_weights_are_usage_errors() {
    for spec in ["crypt:x", "crypt:0", "crypt:-1", "crypt:inf"] {
        let args: Vec<String> = ["explore", "--workload", spec]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = run(&args, &mut Vec::new(), &mut Vec::new()).unwrap_err();
        assert_eq!(e.exit_code, 2, "{spec}");
    }
}
