//! End-to-end CLI tests through `ttadse_cli::run`: the warm-cache
//! byte-identity contract, resume accounting, and cache management.

use std::fs;
use std::path::PathBuf;

use ttadse_cli::run;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ttadse-cli-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn run_ok(args: &[&str]) -> (String, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let mut err = Vec::new();
    run(&args, &mut out, &mut err).unwrap_or_else(|e| panic!("{args:?}: {e}"));
    (
        String::from_utf8(out).expect("stdout utf-8"),
        String::from_utf8(err).expect("stderr utf-8"),
    )
}

#[test]
fn warm_cache_json_is_byte_identical_and_all_hits() {
    let dir = tmpdir("explore");
    let cache_dir = dir.to_str().expect("utf-8 temp path");
    let explore = [
        "explore",
        "--space",
        "tiny",
        "--rounds",
        "1",
        "--serial",
        "--format",
        "json",
        "--cache-dir",
        cache_dir,
    ];
    let (cold_out, cold_err) = run_ok(&explore);
    assert!(cold_out.starts_with('{'), "one JSON document: {cold_out}");
    assert!(cold_err.contains("misses"), "{cold_err}");

    // Second run: resumable, every point a hit, stdout byte-identical.
    let mut resumed: Vec<&str> = explore.to_vec();
    resumed.push("--resume");
    let (warm_out, warm_err) = run_ok(&resumed);
    assert_eq!(cold_out, warm_out, "stdout must be byte-identical");
    assert!(warm_err.contains("resuming:"), "{warm_err}");
    assert!(warm_err.contains("0 misses"), "{warm_err}");

    // The cache subcommand sees the same file…
    let (stats, _) = run_ok(&[
        "cache",
        "stats",
        "--cache-dir",
        cache_dir,
        "--format",
        "json",
    ]);
    assert!(stats.contains("\"exists\":true"), "{stats}");
    // …and clears it.
    let (cleared, _) = run_ok(&["cache", "clear", "--cache-dir", cache_dir]);
    assert!(cleared.contains("cleared"), "{cleared}");
    let (stats, _) = run_ok(&[
        "cache",
        "stats",
        "--cache-dir",
        cache_dir,
        "--format",
        "json",
    ]);
    assert!(stats.contains("\"entries\":0"), "{stats}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn csv_and_table_render_the_same_sweep() {
    let dir = tmpdir("formats");
    let cache_dir = dir.to_str().expect("utf-8 temp path");
    let base = [
        "explore",
        "--space",
        "tiny",
        "--rounds",
        "1",
        "--cache-dir",
        cache_dir,
    ];
    let (csv, _) = run_ok(&[&base[..], &["--format", "csv"]].concat());
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("architecture,area,exec_time,cycles,spills,on_front,test_cost")
    );
    let rows = lines.count();
    let (table, _) = run_ok(&[&base[..], &["--format", "table"]].concat());
    assert!(
        table.contains(&format!("explored {rows} feasible points")),
        "table and csv must agree: {table}"
    );
    assert!(table.contains("selected (equal-weight Euclid):"));
    let _ = fs::remove_dir_all(&dir);
}
