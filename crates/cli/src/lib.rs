//! The unified `ttadse` command line.
//!
//! One binary drives the whole reproduction — template-space sweeps,
//! every figure/table of the paper's evaluation, and the persistent
//! sweep cache:
//!
//! ```text
//! ttadse explore --space fast --workload crypt --parallel --format json
//! ttadse fig2 --fast --format json --cache-dir .ttadse-cache
//! ttadse fig8 --cache-dir .ttadse-cache     # reuses fig2's sweep
//! ttadse table1 --figure9
//! ttadse cache stats --cache-dir .ttadse-cache
//! ```
//!
//! Output goes to stdout in `--format table` (human), `json` (one
//! document, byte-identical for identical results) or `csv`; progress
//! and cache accounting go to stderr, so stdout is always scriptable.
//!
//! The six historical `fig*`/`table1_comparison` binaries still exist
//! as aliases for the corresponding subcommands (see `src/bin/`).

#![warn(missing_docs)]

use std::io::Write;

mod commands;
pub mod opts;

// The deterministic JSON renderer moved into `tta_serve` (the daemon
// needs it for byte-stable wire documents); re-exported so existing
// `ttadse_cli::json` users keep compiling.
pub use tta_serve::json;

/// A CLI failure: what to print and which exit code to use.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message (printed to stderr by the binaries).
    pub message: String,
    /// Process exit code: 2 for usage errors, 1 for runtime failures.
    pub exit_code: u8,
}

impl CliError {
    /// A bad-invocation error (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            exit_code: 2,
        }
    }

    /// A runtime failure (exit code 1).
    pub fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            exit_code: 1,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            // Downstream closed (e.g. `ttadse fig7 | head`): exit
            // quietly like every well-behaved pipe citizen.
            return CliError {
                message: String::new(),
                exit_code: 0,
            };
        }
        CliError::runtime(format!("i/o error: {e}"))
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

const USAGE: &str = "\
ttadse — TTA design/test space exploration (DATE 2000 reproduction)

USAGE:
    ttadse <SUBCOMMAND> [FLAGS]

SUBCOMMANDS:
    explore   Run one exploration sweep end to end
    serve     Run the sweep daemon (`explore --remote URL` submits to it)
    workloads List workloads/suites, or `compare` selections across suites
    sim       Execute a workload or program on the cycle-accurate simulator
    asm       Canonicalise a move-program file (assemble + disassemble)
    netlist   Elaborate one template point to gates: STA, lint, Verilog
    fig2      Figure 2: (area, exec time) solution space + Pareto front
    fig6      Figure 6: identical FUs, different test cost
    fig7      Figure 7: VLIW ASIP test access and test order
    fig8      Figure 8: Pareto set lifted with the test-cost axis
    fig9      Figure 9: weighted-norm architecture selection
    table1    Table 1: full scan vs the functional methodology
    cache     Inspect (`stats`) or delete (`clear`) a sweep cache
    help      Print this help

COMMON FLAGS:
    --fast                 Reduced 8-bit space (default: the paper's 16-bit)
    --format FORMAT        table (default) | json | csv
    --cache-dir DIR        Persistent sweep cache; re-runs skip cached points
    --resume               Require --cache-dir; continue an interrupted sweep
    --eval ENGINE          delta (default): memoized per-component evaluation;
                           scratch: the reference oracle (identical results)

EXPLORE FLAGS:
    --workload LIST        Comma-separated `name[:weight]` items; see
                           `ttadse workloads` for every registered name
    --suite NAME           A named weighted suite (paper | dsp | control | all)
    --space NAME           paper | fast | tiny | huge (hierarchical
                           clusters/pipelining/RF banking; 2^20 points —
                           pair with --budget)
    --rounds N             Crypt Feistel rounds per trace
    --strategy NAME        exhaustive (default) | neighbour (exhaustive in
                           Gray-code order) | random | hillclimb
    --budget N             Evaluate at most N template points
    --seed S               Seed for random/hillclimb (deterministic per seed)
    --lift MODE            pareto (default): lift test cost onto the 2-D front
                           post-hoc, as the paper does; full: sweep the test
                           axis as a third objective (true 3-D front)
    --test-model NAME      eq14 (default): the paper's functional test cost;
                           scan: DfT scan-chain partitioning + shift time
    --cycles SOURCE        model (default): the scheduler's analytic cycle
                           count; simulate: execute every scheduled point on
                           the simulator (identical results, slower)
    --parallel / --serial  Sweep on worker threads (default) or one
    --threads N            Pin the worker count
    --bus-area X           Interconnect model: bus area per bit [GE]
    --bus-delay X          Interconnect model: clock penalty per bus
    --control-area X       Interconnect model: area per instruction bit [GE]
    --fidelity MODE        table (default): area/clock from the back-annotated
                           component tables; netlist: elaborate every explored
                           point to gates and source both axes from loaded STA
    --remote URL           Submit the sweep to a `ttadse serve` daemon and
                           stream it; stdout is byte-identical to a local run
    --priority N           Daemon queue priority (higher runs first; only
                           meaningful with --remote)

SERVE FLAGS:
    --addr HOST:PORT       Listen address (default 127.0.0.1:7878; port 0
                           picks an ephemeral port, reported on stderr)
    --workers N            Concurrent sweep jobs (default 2)
    --cache-dir DIR        Persistent warm cache shared by every job
                           (default: in-memory for the daemon's lifetime)

FIG8 FLAGS:
    --full                 Co-explore the test axis (3-D sweep) and report the
                           true front points the Pareto-only lift misses

WORKLOADS FLAGS:
    list                   List registered workloads and suites (default)
    compare                Sweep once per suite; show how selection moves
    --suites LIST          Suites to compare (default paper,dsp,control)

SIM FLAGS:
    --workload NAME        Execute one registered workload end to end and
                           check executed cycles/outputs against the model
    --program FILE         Assemble FILE and execute it instead
    --arch NAME            max (default for --workload) | figure9 (default
                           for --program)
    --trace                Include the per-cycle move trace in the output

ASM FLAGS:
    FILE                   Program to assemble; canonical text on stdout
    --check                Fail unless FILE is already in canonical form

NETLIST FLAGS:
    --space NAME           paper | fast | tiny | huge (default: the scale's)
    --point I              Template-point index to elaborate (default 0)
    --clock X              Candidate clock period for the STA slack report
                           (default: the netlist's own minimum period)
    --verilog PATH         Export structural Verilog to PATH (`-` = stdout;
                           the summary then moves to stderr)
    --lint                 Run the structural lint pass; exit non-zero when
                           any diagnostic fires

TABLE1 FLAGS:
    --figure9              Cost the paper's published architecture directly

Cache accounting and progress go to stderr; stdout carries only the
requested output, byte-identical across warm and cold cache runs. The
one exception: the delta engine's fold-carry counters (JSON
`search.delta`, table footer) report per-run incremental work, which a
warm cache legitimately reduces.
";

/// Dispatches a full argument list (without the binary name).
///
/// # Errors
///
/// Returns a [`CliError`] for unknown subcommands/flags (exit code 2) or
/// runtime failures (exit code 1).
pub fn run(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        write!(out, "{USAGE}")?;
        return Ok(());
    };
    match cmd.as_str() {
        "explore" => commands::explore(rest, out, err),
        "serve" => commands::serve_cmd(rest, out, err),
        "workloads" => commands::workloads_cmd(rest, out, err),
        "sim" => commands::sim_cmd(rest, out, err),
        "asm" => commands::asm_cmd(rest, out, err),
        "netlist" => commands::netlist_cmd(rest, out, err),
        "fig2" => commands::fig2_cmd(rest, out, err),
        "fig6" => commands::fig6_cmd(rest, out, err),
        "fig7" => commands::fig7_cmd(rest, out, err),
        "fig8" => commands::fig8_cmd(rest, out, err),
        "fig9" => commands::fig9_cmd(rest, out, err),
        "table1" => commands::table1_cmd(rest, out, err),
        "cache" => commands::cache_cmd(rest, out, err),
        "help" | "--help" | "-h" => {
            write!(out, "{USAGE}")?;
            Ok(())
        }
        "--version" | "-V" => {
            writeln!(out, "ttadse {}", env!("CARGO_PKG_VERSION"))?;
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown subcommand {other:?} (see `ttadse help`)"
        ))),
    }
}

/// Entry point shared by the `ttadse` binary and the legacy aliases:
/// runs `args`, reporting errors on stderr with the right exit code.
pub fn main_with_args(args: Vec<String>) -> std::process::ExitCode {
    let stdout = std::io::stdout();
    let stderr = std::io::stderr();
    let result = run(&args, &mut stdout.lock(), &mut stderr.lock());
    match result {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            if !e.message.is_empty() {
                eprintln!("ttadse: {}", e.message);
            }
            std::process::ExitCode::from(e.exit_code)
        }
    }
}

/// Entry point for the legacy single-figure binaries: maps the old flag
/// dialect (`--csv`, bare `--fast`) onto the subcommand `cmd` and runs
/// it.
pub fn legacy_figure_main(cmd: &str) -> std::process::ExitCode {
    let mut args = vec![cmd.to_string()];
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            // The pre-CLI binaries spelled machine-readable output --csv.
            "--csv" => args.extend(["--format".to_string(), "csv".to_string()]),
            _ => args.push(arg),
        }
    }
    main_with_args(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> Result<(String, String), CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let mut err = Vec::new();
        run(&args, &mut out, &mut err)?;
        Ok((
            String::from_utf8(out).expect("stdout is utf-8"),
            String::from_utf8(err).expect("stderr is utf-8"),
        ))
    }

    #[test]
    fn help_prints_usage() {
        let (out, _) = run_capture(&["help"]).unwrap();
        assert!(out.contains("SUBCOMMANDS"));
        let (bare, _) = run_capture(&[]).unwrap();
        assert_eq!(out, bare);
    }

    #[test]
    fn unknown_subcommand_is_usage_error() {
        let e = run_capture(&["figure2"]).unwrap_err();
        assert_eq!(e.exit_code, 2);
        assert!(e.message.contains("figure2"));
    }

    #[test]
    fn unknown_flag_is_usage_error() {
        let e = run_capture(&["fig2", "--fastest"]).unwrap_err();
        assert_eq!(e.exit_code, 2);
    }

    #[test]
    fn resume_without_cache_dir_is_rejected() {
        let e = run_capture(&["fig2", "--fast", "--resume"]).unwrap_err();
        assert_eq!(e.exit_code, 2);
        assert!(e.message.contains("--cache-dir"));
    }

    #[test]
    fn fig7_renders_all_formats() {
        let (table, _) = run_capture(&["fig7"]).unwrap();
        assert!(table.contains("test order"));
        let (json_out, _) = run_capture(&["fig7", "--format", "json"]).unwrap();
        assert!(json_out.starts_with('{') && json_out.contains("\"order\""));
        let (csv, _) = run_capture(&["fig7", "--format", "csv"]).unwrap();
        assert!(csv.starts_with("role,component"));
    }

    #[test]
    fn cache_subcommand_requires_dir() {
        let e = run_capture(&["cache", "stats"]).unwrap_err();
        assert_eq!(e.exit_code, 2);
    }

    #[test]
    fn sim_executes_crypt_to_the_model() {
        let (out, _) = run_capture(&["sim", "--workload", "crypt", "--fast"]).unwrap();
        assert!(out.contains("delta (simulate - model):   0"), "{out}");
        assert!(out.contains("outputs match golden: yes"), "{out}");
        let (json_out, _) =
            run_capture(&["sim", "--workload", "crypt", "--fast", "--format", "json"]).unwrap();
        assert!(json_out.contains("\"delta\":0"), "{json_out}");
        assert!(json_out.contains("\"outputs_match\":true"), "{json_out}");
    }

    #[test]
    fn sim_needs_exactly_one_input() {
        let e = run_capture(&["sim"]).unwrap_err();
        assert_eq!(e.exit_code, 2);
        let e = run_capture(&["sim", "--workload", "crypt", "--program", "x.tta"]).unwrap_err();
        assert_eq!(e.exit_code, 2);
    }

    #[test]
    fn asm_canonicalises_and_checks() {
        let dir = std::env::temp_dir().join(format!("ttadse-asm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prog.tta");
        std::fs::write(
            &path,
            "; demo\n.width 16\n.rf rf1 4 = 1 2 0 0\n.out rf1[2]\n\
             rf1[0] -> alu0.o, rf1[1] -> alu0.add\n-\nalu0.r -> rf1[2]\n",
        )
        .unwrap();
        let (canon, _) = run_capture(&["asm", path.to_str().unwrap()]).unwrap();
        // The comment is stripped, so the original is not canonical...
        let e = run_capture(&["asm", path.to_str().unwrap(), "--check"]).unwrap_err();
        assert_eq!(e.exit_code, 1);
        // ...but the canonical text is a byte-exact fixed point.
        let canon_path = dir.join("canon.tta");
        std::fs::write(&canon_path, &canon).unwrap();
        let (twice, _) = run_capture(&["asm", canon_path.to_str().unwrap(), "--check"]).unwrap();
        assert_eq!(twice, canon);
        // And the canonical program executes on the default machine.
        let (out, _) = run_capture(&["sim", "--program", canon_path.to_str().unwrap()]).unwrap();
        assert!(out.contains("rf1[2] = 3"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explore_simulate_output_is_byte_identical_to_model() {
        let base = [
            "explore",
            "--space",
            "tiny",
            "--workload",
            "crypt",
            "--format",
            "json",
        ];
        let (model, _) = run_capture(&base).unwrap();
        let mut sim_args = base.to_vec();
        sim_args.extend(["--cycles", "simulate"]);
        let (sim, _) = run_capture(&sim_args).unwrap();
        assert_eq!(model, sim, "--cycles simulate must not change any byte");
    }

    #[test]
    fn netlist_subcommand_elaborates_lints_and_exports() {
        let (out, errtxt) = run_capture(&["netlist", "--space", "tiny", "--point", "0"]).unwrap();
        assert!(out.contains("loaded STA"), "{out}");
        assert!(errtxt.contains("elaborating point 0"), "{errtxt}");
        // --lint on a shipped point reports zero diagnostics and exits 0.
        let (out, _) =
            run_capture(&["netlist", "--space", "tiny", "--point", "0", "--lint"]).unwrap();
        assert!(out.contains("lint: 0 diagnostic(s)"), "{out}");
        // JSON carries the stats/sta/fanout objects.
        let (json_out, _) = run_capture(&[
            "netlist", "--space", "tiny", "--point", "0", "--lint", "--format", "json",
        ])
        .unwrap();
        assert!(json_out.contains("\"command\":\"netlist\""), "{json_out}");
        assert!(json_out.contains("\"sta\":{"), "{json_out}");
        assert!(json_out.contains("\"lint\":[]"), "{json_out}");
        // --verilog - moves the summary to stderr and emits a module.
        let (v, summary) = run_capture(&[
            "netlist",
            "--space",
            "tiny",
            "--point",
            "0",
            "--verilog",
            "-",
        ])
        .unwrap();
        assert!(v.starts_with("// generated by ttadse"), "{v}");
        assert!(v.contains("module "), "{v}");
        assert!(v.trim_end().ends_with("endmodule"), "{v}");
        assert!(summary.contains("loaded STA"), "{summary}");
        // Out-of-range points are usage errors.
        let e = run_capture(&["netlist", "--space", "tiny", "--point", "99"]).unwrap_err();
        assert_eq!(e.exit_code, 2);
        assert!(e.message.contains("out of range"), "{}", e.message);
    }

    #[test]
    fn explore_fidelity_netlist_runs_and_is_echoed() {
        let base = [
            "explore",
            "--space",
            "tiny",
            "--workload",
            "crypt",
            "--format",
            "json",
        ];
        let (table_run, _) = run_capture(&base).unwrap();
        assert!(table_run.contains("\"fidelity\":\"table\""), "{table_run}");
        let mut args = base.to_vec();
        args.extend(["--fidelity", "netlist"]);
        let (netlist_run, _) = run_capture(&args).unwrap();
        assert!(
            netlist_run.contains("\"fidelity\":\"netlist\""),
            "{netlist_run}"
        );
        // Serial and parallel netlist-fidelity sweeps render the same bytes.
        let mut serial_args = args.clone();
        serial_args.push("--serial");
        let (serial_run, _) = run_capture(&serial_args).unwrap();
        let mut parallel_args = args.clone();
        parallel_args.push("--parallel");
        let (parallel_run, _) = run_capture(&parallel_args).unwrap();
        assert_eq!(serial_run, parallel_run);
        let e = run_capture(&["explore", "--fidelity", "rtl"]).unwrap_err();
        assert_eq!(e.exit_code, 2);
    }

    #[test]
    fn explore_scratch_output_is_byte_identical_to_delta() {
        let base = [
            "explore",
            "--space",
            "tiny",
            "--workload",
            "crypt",
            "--format",
            "json",
        ];
        let (delta, _) = run_capture(&base).unwrap();
        let mut scratch_args = base.to_vec();
        scratch_args.extend(["--eval", "scratch"]);
        let (scratch, _) = run_capture(&scratch_args).unwrap();
        // The delta run echoes its fold-carry accounting, the scratch
        // run has none and a Gray walk carries more than an enumeration
        // walk — stats are the sanctioned engine-observability
        // exception, so strip them (and the strategy name) before the
        // byte comparison.
        let strip = |s: &str| {
            let s = s.replace("exhaustive-neighbour", "exhaustive");
            match s.find(",\"delta\":{") {
                None => s,
                Some(start) => {
                    let end = start + s[start..].find('}').expect("stats object closes") + 1;
                    format!("{}{}", &s[..start], &s[end..])
                }
            }
        };
        assert!(
            delta.contains("\"delta\":{\"fold_carries\":"),
            "delta run must echo fold-carry stats: {delta}"
        );
        assert!(
            !scratch.contains("\"delta\":"),
            "scratch run must not echo stats: {scratch}"
        );
        assert_eq!(
            strip(&delta),
            strip(&scratch),
            "--eval scratch must not change any byte beyond the stats object"
        );
        // Gray-code visit order must not change the reported front or
        // objective bytes either (JSON output is order-canonicalised by
        // area, not visit order).
        let mut gray_args = base.to_vec();
        gray_args.extend(["--strategy", "neighbour"]);
        let (gray, _) = run_capture(&gray_args).unwrap();
        assert_eq!(strip(&gray), strip(&delta));
    }
}
