//! Flag parsing shared by every subcommand.
//!
//! Deliberately tiny (the container has no clap): positional-free
//! subcommands, `--flag` booleans and `--flag VALUE` options, with
//! unknown flags rejected so typos fail loudly instead of silently
//! running a paper-scale sweep with defaults.

use std::path::PathBuf;

use tta_core::explore::EvalMode;

use crate::CliError;

// The `--format` selector now lives with the job spec (the daemon
// accepts the same values over the wire); the CLI re-exports it so the
// subcommands keep their `opts::Format` spelling.
pub use tta_serve::spec::Format;

fn parse_format(s: &str) -> Result<Format, CliError> {
    Format::parse(s).map_err(|e| CliError::usage(format!("--format: {e}")))
}

/// Options every sweep-running subcommand understands.
#[derive(Debug, Default)]
pub struct CommonOpts {
    /// `--fast`: reduced 8-bit space instead of the paper's 16-bit one.
    pub fast: bool,
    /// `--format`: output rendering.
    pub format: Format,
    /// `--cache-dir`: persistent sweep cache location.
    pub cache_dir: Option<PathBuf>,
    /// `--resume`: insist on the persistent cache (errors without
    /// `--cache-dir`); evaluation then picks up where the last
    /// interrupted run stopped.
    pub resume: bool,
    /// `--eval`: per-point evaluation engine (memoized `delta` by
    /// default, or `scratch` as the reference oracle).
    pub eval: EvalMode,
}

fn parse_eval(s: &str) -> Result<EvalMode, CliError> {
    match s {
        "scratch" => Ok(EvalMode::Scratch),
        "delta" => Ok(EvalMode::Delta),
        other => Err(CliError::usage(format!(
            "unknown --eval {other:?} (expected scratch or delta)"
        ))),
    }
}

/// A cursor over raw CLI arguments with flag/value helpers.
pub struct ArgCursor<'a> {
    args: std::slice::Iter<'a, String>,
}

impl Iterator for ArgCursor<'_> {
    type Item = String;

    /// Next raw argument, if any.
    fn next(&mut self) -> Option<String> {
        self.args.next().cloned()
    }
}

impl<'a> ArgCursor<'a> {
    /// Wraps the argument list (subcommand name already consumed).
    pub fn new(args: &'a [String]) -> Self {
        ArgCursor { args: args.iter() }
    }

    /// The value following `flag`, or a usage error naming it.
    pub fn value_for(&mut self, flag: &str) -> Result<String, CliError> {
        self.next()
            .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
    }

    /// The value following `flag`, parsed.
    pub fn parse_for<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, CliError> {
        let raw = self.value_for(flag)?;
        raw.parse()
            .map_err(|_| CliError::usage(format!("{flag} got {raw:?}, which does not parse")))
    }
}

impl CommonOpts {
    /// Tries to consume `arg` as one of the common flags, pulling values
    /// off `cursor` as needed. Returns `false` when the flag is not a
    /// common one (the caller then matches its own flags).
    pub fn consume(&mut self, arg: &str, cursor: &mut ArgCursor) -> Result<bool, CliError> {
        match arg {
            "--fast" => self.fast = true,
            "--paper" => self.fast = false,
            "--format" => self.format = parse_format(&cursor.value_for("--format")?)?,
            "--cache-dir" => self.cache_dir = Some(PathBuf::from(cursor.value_for("--cache-dir")?)),
            "--resume" => self.resume = true,
            "--eval" => self.eval = parse_eval(&cursor.value_for("--eval")?)?,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Validates cross-flag constraints (today: `--resume` needs
    /// `--cache-dir`).
    pub fn validate(&self) -> Result<(), CliError> {
        if self.resume && self.cache_dir.is_none() {
            return Err(CliError::usage(
                "--resume needs --cache-dir (there is nothing to resume from without one)",
            ));
        }
        Ok(())
    }
}

/// A usage error for a flag the subcommand does not know.
pub fn unknown_flag(cmd: &str, arg: &str) -> CliError {
    CliError::usage(format!(
        "unknown flag {arg:?} for `ttadse {cmd}` (see `ttadse help`)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_common_flags() {
        let args = strs(&[
            "--fast",
            "--format",
            "json",
            "--cache-dir",
            "/tmp/c",
            "--resume",
            "--eval",
            "scratch",
        ]);
        let mut cursor = ArgCursor::new(&args);
        let mut opts = CommonOpts::default();
        while let Some(arg) = cursor.next() {
            assert!(opts.consume(&arg, &mut cursor).unwrap(), "{arg}");
        }
        assert!(opts.fast);
        assert_eq!(opts.format, Format::Json);
        assert_eq!(
            opts.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/c"))
        );
        assert_eq!(opts.eval, EvalMode::Scratch);
        assert!(opts.validate().is_ok());
    }

    #[test]
    fn eval_defaults_to_delta_and_rejects_typos() {
        assert_eq!(CommonOpts::default().eval, EvalMode::Delta);
        assert!(parse_eval("detla").is_err());
    }

    #[test]
    fn resume_requires_cache_dir() {
        let opts = CommonOpts {
            resume: true,
            ..CommonOpts::default()
        };
        assert!(opts.validate().is_err());
    }

    #[test]
    fn rejects_bad_format() {
        let e = parse_format("yaml").unwrap_err();
        assert_eq!(e.exit_code, 2);
        assert!(e.message.contains("--format"));
    }
}
