//! Subcommand implementations: `explore`, the six figure/table
//! regenerations, and `cache` management.

use std::io::Write;
use std::path::PathBuf;

use tta_arch::Architecture;
use tta_bench::{
    compare_suites, fig2, fig6, fig7, fig8, fig9, table1, table1_for, Experiments, Scale,
};
use tta_core::cache::SweepCache;
use tta_core::report::TextTable;
use tta_movec::schedule::Scheduler;
use tta_serve::client::run_remote;
use tta_serve::exec::{self, front_point_json};
use tta_serve::server::{install_signal_handlers, Server};
use tta_serve::spec::{cycles_parse, fidelity_parse, lift_parse, JobSpec, Strategy, TestModel};
use tta_sim::{SimOptions, Simulator, Trace};
use tta_workloads::{SuiteRegistry, Workload};

use crate::json;
use crate::opts::{unknown_flag, ArgCursor, CommonOpts, Format};
use crate::CliError;

// ---------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------

/// Opens the persistent cache named by `--cache-dir`, if any, and
/// reports resume state on stderr.
fn open_cache(common: &CommonOpts, err: &mut dyn Write) -> Result<Option<SweepCache>, CliError> {
    let Some(dir) = &common.cache_dir else {
        return Ok(None);
    };
    let cache = SweepCache::open(dir)
        .map_err(|e| CliError::runtime(format!("cannot open cache dir {}: {e}", dir.display())))?;
    if common.resume {
        writeln!(
            err,
            "resuming: {} cached entries under {}",
            cache.len(),
            dir.display()
        )?;
    }
    Ok(Some(cache))
}

/// Prints hit/miss accounting on stderr (never stdout — stdout must be
/// byte-identical between cold and warm runs).
fn cache_report(cache: &Option<SweepCache>, err: &mut dyn Write) -> Result<(), CliError> {
    if let Some(cache) = cache {
        writeln!(
            err,
            "cache: {} hits, {} misses -> {}",
            cache.hits(),
            cache.misses(),
            cache.path().display()
        )?;
    }
    Ok(())
}

/// The shared flush-failure warning line (stderr only — stdout stays
/// byte-identical across cache fates).
fn warn_flush_failure(msg: &str, err: &mut dyn Write) -> Result<(), CliError> {
    writeln!(
        err,
        "warning: sweep cache could not be persisted ({msg}); \
         results are complete but the next run will re-evaluate"
    )?;
    Ok(())
}

/// The flush warning for the figure-harness context: covers every
/// exploration the `Experiments` ran (fig2/fig8/fig9/table1 and the
/// `--full` comparison all sweep through it).
fn warn_experiments_cache(exp: &Experiments, err: &mut dyn Write) -> Result<(), CliError> {
    if let Some(msg) = exp.flush_failure() {
        warn_flush_failure(msg, err)?;
    }
    Ok(())
}

fn scale_of(common: &CommonOpts) -> Scale {
    if common.fast {
        Scale::Fast
    } else {
        Scale::Paper
    }
}

fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Paper => "paper",
        Scale::Fast => "fast",
    }
}

/// Builds the figure experiment context, wired to the cache when one is
/// configured. `--eval` is deliberately NOT echoed in any output
/// format: CI `cmp`s a delta run against a scratch run to assert the
/// memoized engine reproduces the oracle byte-identically.
fn experiments<'c>(common: &CommonOpts, cache: &'c Option<SweepCache>) -> Experiments<'c> {
    let scale = scale_of(common);
    match cache {
        Some(c) => Experiments::with_cache(scale, c),
        None => Experiments::new(scale),
    }
    .eval_mode(common.eval)
}

// ---------------------------------------------------------------------
// explore & serve
// ---------------------------------------------------------------------

struct ExploreOpts {
    common: CommonOpts,
    spec: JobSpec,
    remote: Option<String>,
}

/// Builds a [`JobSpec`] from `ttadse explore` flags. The spec is the
/// same object `--remote` posts to the daemon, so every knob parsed
/// here round-trips the wire unchanged.
fn parse_explore(args: &[String]) -> Result<ExploreOpts, CliError> {
    let mut common = CommonOpts::default();
    let mut spec = JobSpec::default();
    let mut remote = None;
    let mut cursor = ArgCursor::new(args);
    while let Some(arg) = cursor.next() {
        if common.consume(&arg, &mut cursor)? {
            continue;
        }
        match arg.as_str() {
            "--space" => spec.space = Some(cursor.value_for("--space")?),
            "--workload" => spec
                .workloads
                .extend(cursor.value_for("--workload")?.split(',').map(String::from)),
            "--suite" => spec.suite = Some(cursor.value_for("--suite")?),
            "--rounds" => spec.rounds = Some(cursor.parse_for("--rounds")?),
            "--parallel" => spec.parallel = true,
            "--serial" => spec.parallel = false,
            "--threads" => spec.threads = Some(cursor.parse_for("--threads")?),
            "--strategy" => {
                spec.strategy =
                    Strategy::parse(&cursor.value_for("--strategy")?).map_err(flag_err)?;
            }
            "--budget" => spec.budget = Some(cursor.parse_for("--budget")?),
            "--seed" => spec.seed = Some(cursor.parse_for("--seed")?),
            "--lift" => spec.lift = lift_parse(&cursor.value_for("--lift")?).map_err(flag_err)?,
            "--test-model" => {
                spec.test_model =
                    TestModel::parse(&cursor.value_for("--test-model")?).map_err(flag_err)?;
            }
            "--cycles" => {
                spec.cycles = cycles_parse(&cursor.value_for("--cycles")?).map_err(flag_err)?;
            }
            "--fidelity" => {
                spec.fidelity =
                    fidelity_parse(&cursor.value_for("--fidelity")?).map_err(flag_err)?;
            }
            "--bus-area" => spec.bus_area = Some(cursor.parse_for("--bus-area")?),
            "--bus-delay" => spec.bus_delay = Some(cursor.parse_for("--bus-delay")?),
            "--control-area" => spec.control_area = Some(cursor.parse_for("--control-area")?),
            "--remote" => remote = Some(cursor.value_for("--remote")?),
            "--priority" => spec.priority = cursor.parse_for("--priority")?,
            other => return Err(unknown_flag("explore", other)),
        }
    }
    common.validate()?;
    spec.fast = common.fast;
    spec.eval = common.eval;
    spec.format = common.format;
    spec.validate().map_err(flag_err)?;
    Ok(ExploreOpts {
        common,
        spec,
        remote,
    })
}

/// Maps a spec-layer usage message onto the CLI's exit-code-2 error.
fn flag_err(message: String) -> CliError {
    CliError::usage(message)
}

/// `ttadse explore`: one full sweep with every knob exposed — run
/// locally, or streamed from a `ttadse serve` daemon with `--remote`
/// (byte-identical stdout either way: both paths render through
/// `tta_serve::exec`).
pub fn explore(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> Result<(), CliError> {
    let o = parse_explore(args)?;
    if let Some(url) = &o.remote {
        return explore_remote(url, &o, out, err);
    }
    let job = exec::prepare(&o.spec).map_err(flag_err)?;
    let cache = open_cache(&o.common, err)?;
    writeln!(
        err,
        "exploring {} template points x {} workload(s)...",
        job.space_points(),
        job.workload_count()
    )?;
    let result = job.run(cache.as_ref(), None, None, None);
    out.write_all(result.output.as_bytes())?;
    if let Some(d) = &result.delta {
        // Arena traffic is observability-only (counts vary with thread
        // interleaving under --parallel), so it goes to stderr with the
        // cache accounting rather than into the deterministic stdout.
        writeln!(
            err,
            "delta engine: {} fold carries, {} scratch refolds; memo arena {} hits, {} misses, {} evictions",
            d.fold_carries, d.scratch_fallbacks, d.arena_hits, d.arena_misses, d.arena_evictions
        )?;
    }
    if let Some(msg) = &result.flush_failure {
        warn_flush_failure(msg, err)?;
    }
    cache_report(&cache, err)
}

/// The `--remote` path: post the spec, stream progress to stderr, and
/// emit the daemon's rendered document verbatim on stdout.
fn explore_remote(
    url: &str,
    o: &ExploreOpts,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    if o.common.cache_dir.is_some() || o.common.resume {
        return Err(CliError::usage(
            "--cache-dir/--resume are local options; with --remote the daemon owns the warm cache",
        ));
    }
    let summary = run_remote(url, &o.spec, out, err).map_err(CliError::runtime)?;
    writeln!(
        err,
        "remote job {}: {} evaluations, {} on the front, cache {}",
        summary.job, summary.evaluations, summary.front, summary.cache
    )?;
    if let Some(msg) = &summary.flush_failure {
        warn_flush_failure(msg, err)?;
    }
    if summary.cancelled {
        writeln!(
            err,
            "remote job {} was cancelled server-side; the output above is the partial render",
            summary.job
        )?;
    }
    Ok(())
}

/// `ttadse serve`: the sweep daemon. Serves until SIGTERM/SIGINT or
/// `POST /shutdown`, then drains jobs, flushes the warm cache and
/// exits 0.
pub fn serve_cmd(
    args: &[String],
    _out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    let mut addr = String::from("127.0.0.1:7878");
    let mut workers = 2usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut cursor = ArgCursor::new(args);
    while let Some(arg) = cursor.next() {
        match arg.as_str() {
            "--addr" => addr = cursor.value_for("--addr")?,
            "--workers" => workers = cursor.parse_for("--workers")?,
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(cursor.value_for("--cache-dir")?));
            }
            other => return Err(unknown_flag("serve", other)),
        }
    }
    if workers == 0 {
        return Err(CliError::usage("--workers must be at least 1"));
    }
    let cache = match &cache_dir {
        Some(dir) => SweepCache::open(dir).map_err(|e| {
            CliError::runtime(format!("cannot open cache dir {}: {e}", dir.display()))
        })?,
        None => SweepCache::in_memory(),
    };
    install_signal_handlers();
    let server = Server::bind(&addr, workers, cache)
        .map_err(|e| CliError::runtime(format!("cannot bind {addr}: {e}")))?;
    let bound = server.local_addr()?;
    writeln!(
        err,
        "ttadse serve: listening on {bound} ({workers} workers, cache: {})",
        cache_dir
            .as_deref()
            .map_or_else(|| "in-memory".into(), |d| d.display().to_string())
    )?;
    server
        .run()
        .map_err(|e| CliError::runtime(format!("serve failed: {e}")))
}

// ---------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------

fn parse_common_only(cmd: &'static str, args: &[String]) -> Result<CommonOpts, CliError> {
    let mut common = CommonOpts::default();
    let mut cursor = ArgCursor::new(args);
    while let Some(arg) = cursor.next() {
        if !common.consume(&arg, &mut cursor)? {
            return Err(unknown_flag(cmd, &arg));
        }
    }
    common.validate()?;
    Ok(common)
}

/// `ttadse fig2`: the 2-D (area, time) solution space.
pub fn fig2_cmd(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> Result<(), CliError> {
    let common = parse_common_only("fig2", args)?;
    let scale = scale_of(&common);
    writeln!(err, "running Figure 2 at {} scale...", scale_label(scale))?;
    let cache = open_cache(&common, err)?;
    let mut exp = experiments(&common, &cache);
    let fig = fig2(&mut exp);
    match common.format {
        Format::Table => writeln!(out, "{fig}")?,
        Format::Json => {
            let doc = json::object([
                ("figure", json::string("fig2")),
                ("scale", json::string(scale_label(scale))),
                (
                    "points",
                    json::array(fig.points.iter().map(|(a, t, on)| {
                        json::object([
                            ("area", json::number(*a)),
                            ("exec_time", json::number(*t)),
                            ("on_front", json::boolean(*on)),
                        ])
                    })),
                ),
                (
                    "front",
                    json::array(fig.front.iter().map(|(a, t, name)| {
                        json::object([
                            ("area", json::number(*a)),
                            ("exec_time", json::number(*t)),
                            ("architecture", json::string(name)),
                        ])
                    })),
                ),
                ("infeasible", json::int(fig.infeasible as u64)),
            ]);
            writeln!(out, "{doc}")?;
        }
        Format::Csv => {
            writeln!(out, "area,exec_time,on_front")?;
            for (a, t, on) in &fig.points {
                writeln!(out, "{a:.1},{t:.1},{}", u8::from(*on))?;
            }
        }
    }
    warn_experiments_cache(&exp, err)?;
    cache_report(&cache, err)
}

/// `ttadse fig6`: identical FUs, different test cost.
pub fn fig6_cmd(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> Result<(), CliError> {
    let common = parse_common_only("fig6", args)?;
    let cache = open_cache(&common, err)?;
    let mut exp = experiments(&common, &cache);
    let fig = fig6(&mut exp);
    match common.format {
        Format::Table => writeln!(out, "{fig}")?,
        Format::Json => {
            let doc = json::object([
                ("figure", json::string("fig6")),
                ("np", json::int(fig.np as u64)),
                (
                    "dedicated",
                    json::object([
                        ("cd", json::int(u64::from(fig.dedicated.0))),
                        ("ftfu", json::number(fig.dedicated.1)),
                    ]),
                ),
                (
                    "shared",
                    json::object([
                        ("cd", json::int(u64::from(fig.shared.0))),
                        ("ftfu", json::number(fig.shared.1)),
                    ]),
                ),
                (
                    "ratio_form",
                    json::array([
                        json::number(fig.ratio_form.0),
                        json::number(fig.ratio_form.1),
                    ]),
                ),
            ]);
            writeln!(out, "{doc}")?;
        }
        Format::Csv => {
            writeln!(out, "unit,cd,ftfu")?;
            writeln!(out, "dedicated,{},{}", fig.dedicated.0, fig.dedicated.1)?;
            writeln!(out, "shared,{},{}", fig.shared.0, fig.shared.1)?;
        }
    }
    warn_experiments_cache(&exp, err)?;
    cache_report(&cache, err)
}

/// `ttadse fig7`: VLIW test access and order. No sweep runs, but the
/// common cache flags are still honoured (an attached cache reports
/// zero traffic) so one flag set works across every subcommand.
pub fn fig7_cmd(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> Result<(), CliError> {
    let common = parse_common_only("fig7", args)?;
    let cache = open_cache(&common, err)?;
    let fig = fig7();
    match common.format {
        Format::Table => writeln!(out, "{fig}")?,
        Format::Json => {
            let doc = json::object([
                ("figure", json::string("fig7")),
                (
                    "direct",
                    json::array(fig.direct.iter().map(|s| json::string(s))),
                ),
                (
                    "order",
                    json::array(fig.order.iter().map(|s| json::string(s))),
                ),
            ]);
            writeln!(out, "{doc}")?;
        }
        Format::Csv => {
            writeln!(out, "role,component")?;
            for c in &fig.direct {
                writeln!(out, "direct,{c}")?;
            }
            for c in &fig.order {
                writeln!(out, "order,{c}")?;
            }
        }
    }
    cache_report(&cache, err)
}

/// `ttadse fig8`: the lifted 3-D Pareto set; `--full` additionally
/// runs the true 3-D co-exploration and reports what the Pareto-only
/// lift misses.
pub fn fig8_cmd(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> Result<(), CliError> {
    let mut common = CommonOpts::default();
    let mut full = false;
    let mut cursor = ArgCursor::new(args);
    while let Some(arg) = cursor.next() {
        if common.consume(&arg, &mut cursor)? {
            continue;
        }
        match arg.as_str() {
            "--full" => full = true,
            other => return Err(unknown_flag("fig8", other)),
        }
    }
    common.validate()?;
    let scale = scale_of(&common);
    writeln!(err, "running Figure 8 at {} scale...", scale_label(scale))?;
    let cache = open_cache(&common, err)?;
    let mut exp = experiments(&common, &cache);
    if full {
        return fig8_full_render(&mut exp, &common, out, err, &cache);
    }
    let fig = fig8(&mut exp);
    match common.format {
        Format::Table => writeln!(out, "{fig}")?,
        Format::Json => {
            let doc = json::object([
                ("figure", json::string("fig8")),
                ("scale", json::string(scale_label(scale))),
                (
                    "points",
                    json::array(fig.points.iter().map(|(a, t, tc, name)| {
                        json::object([
                            ("area", json::number(*a)),
                            ("exec_time", json::number(*t)),
                            ("test_cost", json::number(*tc)),
                            ("architecture", json::string(name)),
                        ])
                    })),
                ),
                ("projection_holds", json::boolean(fig.projection_holds)),
                ("test_spread", json::number(fig.test_spread)),
            ]);
            writeln!(out, "{doc}")?;
        }
        Format::Csv => {
            writeln!(out, "area,exec_time,test_cost,architecture")?;
            for (a, t, tc, name) in &fig.points {
                writeln!(out, "{a:.1},{t:.1},{tc:.1},{name}")?;
            }
        }
    }
    warn_experiments_cache(&exp, err)?;
    cache_report(&cache, err)
}

/// Renders `ttadse fig8 --full`: the co-explored 3-D front compared
/// with the paper's Pareto-only lift.
fn fig8_full_render(
    exp: &mut Experiments,
    common: &CommonOpts,
    out: &mut dyn Write,
    err: &mut dyn Write,
    cache: &Option<SweepCache>,
) -> Result<(), CliError> {
    let fig = tta_bench::fig8_full(exp);
    match common.format {
        Format::Table => writeln!(out, "{fig}")?,
        Format::Json => {
            let doc = json::object([
                ("figure", json::string("fig8-full")),
                ("scale", json::string(scale_label(exp.scale))),
                ("lift", json::string("full")),
                ("design_front", json::int(fig.design_front as u64)),
                ("full_front", json::int(fig.full_front as u64)),
                ("missed_by_pareto_lift", json::int(fig.missed.len() as u64)),
                (
                    "missed",
                    json::array(fig.missed.iter().map(|(a, t, tc, name)| {
                        json::object([
                            ("area", json::number(*a)),
                            ("exec_time", json::number(*t)),
                            ("test_cost", json::number(*tc)),
                            ("architecture", json::string(name)),
                        ])
                    })),
                ),
                ("projection_holds", json::boolean(fig.projection_holds)),
            ]);
            writeln!(out, "{doc}")?;
        }
        Format::Csv => {
            writeln!(
                out,
                "area,exec_time,test_cost,architecture,missed_by_pareto_lift"
            )?;
            for (a, t, tc, name) in &fig.missed {
                writeln!(out, "{a:.1},{t:.1},{tc:.1},{name},1")?;
            }
        }
    }
    warn_experiments_cache(exp, err)?;
    cache_report(cache, err)
}

/// `ttadse fig9`: the weighted-norm selection.
pub fn fig9_cmd(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> Result<(), CliError> {
    let common = parse_common_only("fig9", args)?;
    let scale = scale_of(&common);
    writeln!(err, "running Figure 9 at {} scale...", scale_label(scale))?;
    let cache = open_cache(&common, err)?;
    let mut exp = experiments(&common, &cache);
    let fig = fig9(&mut exp);
    match common.format {
        Format::Table => writeln!(out, "{fig}")?,
        Format::Json => {
            let doc = json::object([
                ("figure", json::string("fig9")),
                ("scale", json::string(scale_label(scale))),
                ("selected", front_point_json(&fig.selected)),
                (
                    "alternatives",
                    json::array(fig.alternatives.iter().map(|(label, name)| {
                        json::object([
                            ("label", json::string(label)),
                            ("architecture", json::string(name)),
                        ])
                    })),
                ),
            ]);
            writeln!(out, "{doc}")?;
        }
        Format::Csv => {
            writeln!(out, "label,architecture")?;
            writeln!(out, "selected,{}", fig.selected.architecture.name)?;
            for (label, name) in &fig.alternatives {
                writeln!(out, "{},{name}", label.replace(',', ";"))?;
            }
        }
    }
    warn_experiments_cache(&exp, err)?;
    cache_report(&cache, err)
}

/// `ttadse table1`: full scan vs the functional methodology.
pub fn table1_cmd(
    args: &[String],
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    let mut common = CommonOpts::default();
    let mut figure9 = false;
    let mut cursor = ArgCursor::new(args);
    while let Some(arg) = cursor.next() {
        if common.consume(&arg, &mut cursor)? {
            continue;
        }
        match arg.as_str() {
            "--figure9" => figure9 = true,
            other => return Err(unknown_flag("table1", other)),
        }
    }
    common.validate()?;
    let scale = scale_of(&common);
    let cache = open_cache(&common, err)?;
    let mut exp = experiments(&common, &cache);
    let table = if figure9 {
        table1_for(&mut exp, tta_arch::Architecture::figure9())
    } else {
        writeln!(
            err,
            "selecting the architecture at {} scale...",
            scale_label(scale)
        )?;
        table1(&mut exp)
    };
    match common.format {
        Format::Table => writeln!(out, "{table}")?,
        Format::Json => {
            let (fs, ours) = table.totals();
            let doc = json::object([
                ("table", json::string("table1")),
                ("architecture", json::string(&table.architecture.name)),
                (
                    "rows",
                    json::array(table.rows.iter().map(|r| {
                        json::object([
                            ("component", json::string(&r.component)),
                            ("full_scan", json::int(r.full_scan as u64)),
                            ("ours", json::number(r.ours)),
                            ("nl", json::int(r.nl as u64)),
                            ("ftfu", json::opt_number(r.ftfu)),
                            ("ftrf", json::opt_number(r.ftrf)),
                            ("fts", json::number(r.fts)),
                            ("coverage_pct", json::number(r.coverage)),
                            ("excluded", json::boolean(r.excluded)),
                        ])
                    })),
                ),
                (
                    "totals",
                    json::object([
                        ("full_scan", json::number(fs)),
                        ("ours", json::number(ours)),
                    ]),
                ),
            ]);
            writeln!(out, "{doc}")?;
        }
        Format::Csv => {
            writeln!(
                out,
                "component,full_scan,ours,nl,ftfu,ftrf,fts,coverage_pct,excluded"
            )?;
            for r in &table.rows {
                writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{}",
                    r.component,
                    r.full_scan,
                    r.ours,
                    r.nl,
                    r.ftfu.map_or(String::new(), |v| v.to_string()),
                    r.ftrf.map_or(String::new(), |v| v.to_string()),
                    r.fts,
                    r.coverage,
                    u8::from(r.excluded),
                )?;
            }
        }
    }
    warn_experiments_cache(&exp, err)?;
    cache_report(&cache, err)
}

// ---------------------------------------------------------------------
// sim / asm
// ---------------------------------------------------------------------

/// `--arch` selector for `ttadse sim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimArch {
    /// The maximal point of the scale's template space — the one
    /// machine guaranteed to schedule every registered workload.
    Max,
    /// The paper's published Figure 9 machine.
    Figure9,
}

fn parse_sim_arch(s: &str) -> Result<SimArch, CliError> {
    match s {
        "max" => Ok(SimArch::Max),
        "figure9" => Ok(SimArch::Figure9),
        other => Err(CliError::usage(format!(
            "unknown --arch {other:?} (expected max or figure9)"
        ))),
    }
}

fn sim_arch(choice: SimArch, scale: Scale) -> Architecture {
    match choice {
        SimArch::Figure9 => Architecture::figure9(),
        SimArch::Max => {
            let space = scale.space();
            space.point(space.len() - 1)
        }
    }
}

/// The per-cycle move log as table rows / JSON objects.
fn render_trace_table(trace: &Trace, out: &mut dyn Write) -> Result<(), CliError> {
    let mut t = TextTable::new(["cycle", "instr", "moves"]);
    for step in &trace.steps {
        let moves = step
            .moves
            .iter()
            .map(|m| format!("{} -> {} = {}", m.src, m.dst, m.value))
            .collect::<Vec<_>>()
            .join("; ");
        t.row([step.cycle.to_string(), step.instr.to_string(), moves]);
    }
    writeln!(out, "{t}")?;
    Ok(())
}

fn trace_json(trace: &Trace) -> String {
    json::array(trace.steps.iter().map(|step| {
        json::object([
            ("cycle", json::int(step.cycle)),
            ("instr", json::int(step.instr as u64)),
            (
                "moves",
                json::array(step.moves.iter().map(|m| {
                    json::object([
                        ("src", json::string(&m.src.to_string())),
                        ("dst", json::string(&m.dst.to_string())),
                        ("value", json::int(m.value)),
                    ])
                })),
            ),
        ])
    }))
}

/// `ttadse sim`: execute a registered workload (or an assembled
/// program) on the cycle-accurate simulator and report executed vs
/// modeled cycles. A workload run exits non-zero when the simulator
/// disagrees with the analytic model, so it doubles as a drift check.
pub fn sim_cmd(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> Result<(), CliError> {
    let mut common = CommonOpts::default();
    let mut workload: Option<String> = None;
    let mut program: Option<PathBuf> = None;
    let mut arch_choice: Option<SimArch> = None;
    let mut trace_flag = false;
    let mut cursor = ArgCursor::new(args);
    while let Some(arg) = cursor.next() {
        if common.consume(&arg, &mut cursor)? {
            continue;
        }
        match arg.as_str() {
            "--workload" => workload = Some(cursor.value_for("--workload")?),
            "--program" => program = Some(PathBuf::from(cursor.value_for("--program")?)),
            "--arch" => arch_choice = Some(parse_sim_arch(&cursor.value_for("--arch")?)?),
            "--trace" => trace_flag = true,
            other => return Err(unknown_flag("sim", other)),
        }
    }
    common.validate()?;
    match (workload, program) {
        (Some(name), None) => sim_workload(&name, arch_choice, trace_flag, &common, out, err),
        (None, Some(path)) => sim_program(&path, arch_choice, trace_flag, &common, out, err),
        _ => Err(CliError::usage(
            "ttadse sim needs exactly one of --workload NAME or --program FILE",
        )),
    }
}

fn sim_workload(
    name: &str,
    arch_choice: Option<SimArch>,
    trace_flag: bool,
    common: &CommonOpts,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    let scale = scale_of(common);
    let registry = SuiteRegistry::standard();
    let w: Workload = registry.build(name, &scale.suite_params()).ok_or_else(|| {
        CliError::usage(format!(
            "unknown workload {name:?} (expected {})",
            registry.workload_names().join(", ")
        ))
    })?;
    let arch = sim_arch(arch_choice.unwrap_or(SimArch::Max), scale);
    writeln!(err, "simulating {} on {}...", w.name, arch.name)?;
    let schedule = Scheduler::new(&arch).run(&w.dfg).map_err(|e| {
        CliError::runtime(format!(
            "{} does not schedule on {}: {e}",
            w.name, arch.name
        ))
    })?;
    let prog = tta_sim::lower(&arch, &w.dfg, &schedule, &w.inputs, &w.mem)
        .map_err(|e| CliError::runtime(format!("lowering failed: {e}")))?;
    let options = SimOptions {
        allow_register_overflow: true, // lowered spills may exceed hw registers
        ..Default::default()
    };
    let trace = Simulator::new(&arch)
        .options(options)
        .run(&prog)
        .map_err(|e| CliError::runtime(format!("simulation failed: {e}")))?;
    let golden = {
        let mut mem = w.mem.clone();
        w.dfg.eval(&w.inputs, &mut mem)
    };
    let scheduled = u64::from(schedule.cycles);
    let delta = trace.cycles as i64 - scheduled as i64;
    let outputs_match = trace.outputs == golden;
    match common.format {
        Format::Table => {
            writeln!(out, "workload {} on {}", w.name, arch.name)?;
            writeln!(out, "scheduled cycles (model):   {scheduled}")?;
            writeln!(out, "executed cycles (simulate): {}", trace.cycles)?;
            writeln!(out, "delta (simulate - model):   {delta}")?;
            writeln!(
                out,
                "outputs match golden: {}",
                if outputs_match { "yes" } else { "NO" }
            )?;
            if trace_flag {
                render_trace_table(&trace, out)?;
            }
        }
        Format::Json => {
            let mut fields = vec![
                ("command", json::string("sim")),
                ("workload", json::string(&w.name)),
                ("architecture", json::string(&arch.name)),
                ("scheduled_cycles", json::int(scheduled)),
                ("executed_cycles", json::int(trace.cycles)),
                ("delta", delta.to_string()),
                ("outputs_match", json::boolean(outputs_match)),
                (
                    "outputs",
                    json::array(trace.outputs.iter().map(|&v| json::int(v))),
                ),
            ];
            if trace_flag {
                fields.push(("trace", trace_json(&trace)));
            }
            writeln!(out, "{}", json::object(fields))?;
        }
        Format::Csv => {
            writeln!(
                out,
                "workload,architecture,scheduled_cycles,executed_cycles,delta,outputs_match"
            )?;
            writeln!(
                out,
                "{},{},{scheduled},{},{delta},{}",
                w.name,
                arch.name,
                trace.cycles,
                u8::from(outputs_match),
            )?;
        }
    }
    if delta != 0 || !outputs_match {
        return Err(CliError::runtime(format!(
            "simulator disagrees with the analytic model on {} / {} \
             (delta {delta}, outputs match: {outputs_match})",
            w.name, arch.name
        )));
    }
    Ok(())
}

fn sim_program(
    path: &std::path::Path,
    arch_choice: Option<SimArch>,
    trace_flag: bool,
    common: &CommonOpts,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {}: {e}", path.display())))?;
    let prog = tta_asm::assemble(&text)
        .map_err(|e| CliError::runtime(format!("{}: {e}", path.display())))?;
    // Hand-written programs run under the strict rules: declaring more
    // registers than the machine has is an error, not a spill.
    let arch = sim_arch(arch_choice.unwrap_or(SimArch::Figure9), scale_of(common));
    writeln!(err, "simulating {} on {}...", path.display(), arch.name)?;
    let trace = Simulator::new(&arch)
        .run(&prog)
        .map_err(|e| CliError::runtime(format!("simulation failed: {e}")))?;
    let outputs: Vec<(String, u64)> = prog
        .outputs
        .iter()
        .zip(&trace.outputs)
        .map(|(loc, &v)| (format!("{}[{}]", loc.rf, loc.reg), v))
        .collect();
    match common.format {
        Format::Table => {
            writeln!(out, "program {} on {}", path.display(), arch.name)?;
            writeln!(out, "executed cycles: {}", trace.cycles)?;
            for (loc, v) in &outputs {
                writeln!(out, "  {loc} = {v}")?;
            }
            if trace_flag {
                render_trace_table(&trace, out)?;
            }
        }
        Format::Json => {
            let mut fields = vec![
                ("command", json::string("sim")),
                ("program", json::string(&path.display().to_string())),
                ("architecture", json::string(&arch.name)),
                ("executed_cycles", json::int(trace.cycles)),
                (
                    "outputs",
                    json::array(outputs.iter().map(|(loc, v)| {
                        json::object([("location", json::string(loc)), ("value", json::int(*v))])
                    })),
                ),
            ];
            if trace_flag {
                fields.push(("trace", trace_json(&trace)));
            }
            writeln!(out, "{}", json::object(fields))?;
        }
        Format::Csv => {
            writeln!(out, "location,value")?;
            for (loc, v) in &outputs {
                writeln!(out, "{loc},{v}")?;
            }
        }
    }
    Ok(())
}

/// `ttadse asm FILE [--check]`: assemble FILE and print its canonical
/// disassembly; `--check` fails unless FILE already is canonical (so CI
/// can `cmp`-assert byte-identity without a rewrite).
pub fn asm_cmd(args: &[String], out: &mut dyn Write, _err: &mut dyn Write) -> Result<(), CliError> {
    let mut file: Option<PathBuf> = None;
    let mut check = false;
    for arg in ArgCursor::new(args) {
        match arg.as_str() {
            "--check" => check = true,
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(PathBuf::from(other));
            }
            other => return Err(unknown_flag("asm", other)),
        }
    }
    let Some(path) = file else {
        return Err(CliError::usage("ttadse asm needs a program file"));
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError::runtime(format!("cannot read {}: {e}", path.display())))?;
    let program = tta_asm::assemble(&text)
        .map_err(|e| CliError::runtime(format!("{}: {e}", path.display())))?;
    let canonical = tta_asm::disassemble(&program);
    // The assembler's round-trip invariant, kept hot on every CLI use.
    let reparsed = tta_asm::assemble(&canonical)
        .map_err(|e| CliError::runtime(format!("round-trip failure: {e}")))?;
    if reparsed != program {
        return Err(CliError::runtime(
            "round-trip failure: canonical text decodes differently",
        ));
    }
    if check && text != canonical {
        return Err(CliError::runtime(format!(
            "{} is not in canonical form (pipe `ttadse asm` output back to rewrite it)",
            path.display()
        )));
    }
    write!(out, "{canonical}")?;
    Ok(())
}

// ---------------------------------------------------------------------
// workloads
// ---------------------------------------------------------------------

/// `ttadse workloads [list]`: the registered workloads and suites;
/// `ttadse workloads compare --suites a,b,…`: sweep the space once per
/// suite and show how the weighted-norm selection moves.
pub fn workloads_cmd(
    args: &[String],
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    let mut common = CommonOpts::default();
    let mut action: Option<String> = None;
    let mut suites: Option<String> = None;
    let mut cursor = ArgCursor::new(args);
    while let Some(arg) = cursor.next() {
        if common.consume(&arg, &mut cursor)? {
            continue;
        }
        match arg.as_str() {
            "list" | "compare" if action.is_none() => action = Some(arg),
            "--suites" => suites = Some(cursor.value_for("--suites")?),
            other => return Err(unknown_flag("workloads", other)),
        }
    }
    common.validate()?;
    let registry = SuiteRegistry::standard();
    match action.as_deref().unwrap_or("list") {
        "list" => {
            if suites.is_some() {
                return Err(CliError::usage(
                    "--suites only applies to `ttadse workloads compare`",
                ));
            }
            workloads_list(&registry, &common, out)
        }
        "compare" => workloads_compare(&registry, &common, suites, out, err),
        _ => unreachable!("action is validated above"),
    }
}

fn workloads_list(
    registry: &SuiteRegistry,
    common: &CommonOpts,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let scale = scale_of(common);
    let params = scale.suite_params();
    match common.format {
        Format::Table => {
            writeln!(out, "workloads at {} scale:", scale_label(scale))?;
            let mut t = TextTable::new(["name", "instance", "ops", "trace iters"]);
            for name in registry.workload_names() {
                let w = registry.build(name, &params).expect("listed => buildable");
                t.row([
                    name.to_string(),
                    w.name.clone(),
                    w.dfg.operation_count().to_string(),
                    w.trace_iterations.to_string(),
                ]);
            }
            writeln!(out, "{t}")?;
            writeln!(out, "suites:")?;
            let mut t = TextTable::new(["name", "members", "description"]);
            for s in registry.suites() {
                let members = s
                    .members
                    .iter()
                    .map(|(n, w)| format!("{n}:{w}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                t.row([s.name.clone(), members, s.description.clone()]);
            }
            writeln!(out, "{t}")?;
        }
        Format::Json => {
            let doc = json::object([
                ("command", json::string("workloads")),
                ("scale", json::string(scale_label(scale))),
                (
                    "workloads",
                    json::array(registry.workload_names().iter().map(|name| {
                        let w = registry.build(name, &params).expect("listed => buildable");
                        json::object([
                            ("name", json::string(name)),
                            ("instance", json::string(&w.name)),
                            ("operations", json::int(w.dfg.operation_count() as u64)),
                            ("trace_iterations", json::int(w.trace_iterations)),
                        ])
                    })),
                ),
                (
                    "suites",
                    json::array(registry.suites().iter().map(|s| {
                        json::object([
                            ("name", json::string(&s.name)),
                            ("description", json::string(&s.description)),
                            (
                                "members",
                                json::array(s.members.iter().map(|(n, w)| {
                                    json::object([
                                        ("workload", json::string(n)),
                                        ("weight", json::number(*w)),
                                    ])
                                })),
                            ),
                        ])
                    })),
                ),
            ]);
            writeln!(out, "{doc}")?;
        }
        Format::Csv => {
            writeln!(out, "suite,workload,weight")?;
            for s in registry.suites() {
                for (n, w) in &s.members {
                    writeln!(out, "{},{n},{w}", s.name)?;
                }
            }
        }
    }
    Ok(())
}

fn workloads_compare(
    registry: &SuiteRegistry,
    common: &CommonOpts,
    suites: Option<String>,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    let scale = scale_of(common);
    let names: Vec<String> = suites
        .as_deref()
        .unwrap_or("paper,dsp,control")
        .split(',')
        .map(String::from)
        .collect();
    let cache = open_cache(common, err)?;
    writeln!(
        err,
        "comparing {} suite(s) at {} scale...",
        names.len(),
        scale_label(scale)
    )?;
    let cmp = compare_suites(scale, &names, cache.as_ref()).map_err(|bad| {
        CliError::usage(format!(
            "unknown suite {bad:?} (expected {})",
            registry.suite_names().join(", ")
        ))
    })?;
    match common.format {
        Format::Table => {
            writeln!(out, "{cmp}")?;
            let distinct: std::collections::HashSet<&str> = cmp
                .rows
                .iter()
                .filter_map(|r| r.selected.as_ref())
                .map(|e| e.architecture.name.as_str())
                .collect();
            writeln!(
                out,
                "{} suite(s) -> {} distinct selected architecture(s)",
                cmp.rows.len(),
                distinct.len()
            )?;
        }
        Format::Json => {
            let doc = json::object([
                ("command", json::string("workloads-compare")),
                ("scale", json::string(scale_label(scale))),
                ("space_points", json::int(cmp.space_points as u64)),
                (
                    "suites",
                    json::array(cmp.rows.iter().map(|r| {
                        json::object([
                            ("suite", json::string(&r.suite)),
                            (
                                "members",
                                json::array(r.members.iter().map(|(n, w)| {
                                    json::object([
                                        ("workload", json::string(n)),
                                        ("weight", json::number(*w)),
                                    ])
                                })),
                            ),
                            ("feasible", json::int(r.feasible as u64)),
                            ("infeasible", json::int(r.infeasible as u64)),
                            (
                                "blocked",
                                json::array(r.members.iter().zip(&r.blocked).map(|((n, _), b)| {
                                    json::object([
                                        ("workload", json::string(n)),
                                        ("blocked", json::int(*b as u64)),
                                    ])
                                })),
                            ),
                            (
                                "cycle_deltas",
                                json::array(r.members.iter().zip(&r.cycle_deltas).map(
                                    |((n, _), d)| {
                                        json::object([
                                            ("workload", json::string(n)),
                                            (
                                                "delta",
                                                d.map_or_else(|| "null".into(), |v| v.to_string()),
                                            ),
                                        ])
                                    },
                                )),
                            ),
                            (
                                "selected",
                                r.selected
                                    .as_ref()
                                    .map_or_else(|| "null".into(), front_point_json),
                            ),
                        ])
                    })),
                ),
            ]);
            writeln!(out, "{doc}")?;
        }
        Format::Csv => {
            writeln!(
                out,
                "suite,selected,area,exec_time,test_cost,feasible,infeasible,cycle_deltas"
            )?;
            for r in &cmp.rows {
                // Per-member sim-minus-model deltas, ';'-joined in
                // members order (blank when a member did not execute).
                let deltas = r
                    .cycle_deltas
                    .iter()
                    .map(|d| d.map_or(String::new(), |v| v.to_string()))
                    .collect::<Vec<_>>()
                    .join(";");
                match &r.selected {
                    Some(e) => writeln!(
                        out,
                        "{},{},{},{},{},{},{},{deltas}",
                        r.suite,
                        e.architecture.name,
                        e.area(),
                        e.exec_time(),
                        e.test_cost().map_or(String::new(), |c| c.to_string()),
                        r.feasible,
                        r.infeasible,
                    )?,
                    None => writeln!(out, "{},,,,,0,{},{deltas}", r.suite, r.infeasible)?,
                }
            }
        }
    }
    if let Some(msg) = &cmp.flush_failure {
        warn_flush_failure(msg, err)?;
    }
    cache_report(&cache, err)
}

// ---------------------------------------------------------------------
// netlist
// ---------------------------------------------------------------------

/// Resolves a `--space` name for the netlist subcommand (the explore
/// path resolves the same names inside `tta_serve::exec`).
fn netlist_space(name: &str) -> Result<tta_arch::template::TemplateSpace, CliError> {
    use tta_arch::template::TemplateSpace;
    match name {
        "paper" => Ok(TemplateSpace::paper_default()),
        "fast" => Ok(TemplateSpace::fast_default()),
        "tiny" => Ok(TemplateSpace::tiny()),
        "huge" => Ok(TemplateSpace::huge()),
        other => Err(CliError::usage(format!(
            "unknown space {other:?} (expected paper, fast, tiny or huge)"
        ))),
    }
}

/// `ttadse netlist`: elaborate one explored template point down to its
/// gate-level netlist, report loaded STA + fanout statistics, optionally
/// run the structural lint pass (`--lint`, non-zero exit on findings)
/// and export structural Verilog (`--verilog PATH`, `-` for stdout).
///
/// When the Verilog goes to stdout the summary moves to stderr, so
/// `ttadse netlist --verilog - | iverilog …`-style pipelines see only
/// the module text.
pub fn netlist_cmd(
    args: &[String],
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    let mut common = CommonOpts::default();
    let mut space_name: Option<String> = None;
    let mut point = 0usize;
    let mut clock: Option<f64> = None;
    let mut verilog: Option<String> = None;
    let mut lint_flag = false;
    let mut cursor = ArgCursor::new(args);
    while let Some(arg) = cursor.next() {
        if common.consume(&arg, &mut cursor)? {
            continue;
        }
        match arg.as_str() {
            "--space" => space_name = Some(cursor.value_for("--space")?),
            "--point" => point = cursor.parse_for("--point")?,
            "--clock" => clock = Some(cursor.parse_for("--clock")?),
            "--verilog" => verilog = Some(cursor.value_for("--verilog")?),
            "--lint" => lint_flag = true,
            other => return Err(unknown_flag("netlist", other)),
        }
    }
    common.validate()?;
    let space = match &space_name {
        Some(name) => netlist_space(name)?,
        None => scale_of(&common).space(),
    };
    if point >= space.len() {
        return Err(CliError::usage(format!(
            "--point {point} is out of range (the space has {} points)",
            space.len()
        )));
    }
    let arch = space.point(point);
    writeln!(err, "elaborating point {point}: {}...", arch.name)?;
    let nl = tta_netlist::elaborate(&arch)
        .map_err(|e| CliError::runtime(format!("elaboration failed: {e}")))?;
    let stats = tta_netlist::NetlistStats::of(&nl);
    let report = tta_netlist::timing::sta(
        &nl,
        clock.unwrap_or_else(|| tta_netlist::timing::min_clock_period(&nl)),
    );
    let load = tta_netlist::timing::load_distribution(&nl);
    let diagnostics = if lint_flag {
        tta_netlist::lint(&nl)
    } else {
        Vec::new()
    };
    // `--verilog -` claims stdout for the module text; the summary then
    // renders to stderr so both stay machine-readable.
    let verilog_to_stdout = verilog.as_deref() == Some("-");
    let summary: &mut dyn Write = if verilog_to_stdout { err } else { out };
    match common.format {
        Format::Table => {
            writeln!(summary, "{stats}")?;
            writeln!(
                summary,
                "loaded STA: min clock {:.2}, worst slack {:+.2} @ clock {:.2}, {} violation(s)",
                report.critical_path, report.worst_slack, report.clock, report.violations
            )?;
            writeln!(
                summary,
                "fanout: {} nets, mean {:.2}, max {} (net {})",
                load.nets,
                load.mean_fanout(),
                load.max_fanout,
                load.max_net,
            )?;
            if lint_flag {
                for d in &diagnostics {
                    writeln!(summary, "lint: {d}")?;
                }
                writeln!(summary, "lint: {} diagnostic(s)", diagnostics.len())?;
            }
        }
        Format::Json => {
            let mut fields = vec![
                ("command", json::string("netlist")),
                ("architecture", json::string(&arch.name)),
                ("point", json::int(point as u64)),
                (
                    "stats",
                    json::object([
                        ("inputs", json::int(stats.inputs as u64)),
                        ("outputs", json::int(stats.outputs as u64)),
                        ("gates", json::int(stats.gates as u64)),
                        ("dffs", json::int(stats.dffs as u64)),
                        ("area", json::number(stats.area)),
                        ("depth", json::int(u64::from(stats.depth))),
                    ]),
                ),
                (
                    "sta",
                    json::object([
                        ("clock", json::number(report.clock)),
                        ("min_clock", json::number(report.critical_path)),
                        ("worst_slack", json::number(report.worst_slack)),
                        ("violations", json::int(report.violations as u64)),
                    ]),
                ),
                (
                    "fanout",
                    json::object([
                        ("nets", json::int(load.nets as u64)),
                        ("total_readers", json::int(load.total_readers as u64)),
                        ("mean", json::number(load.mean_fanout())),
                        ("max", json::int(load.max_fanout as u64)),
                    ]),
                ),
            ];
            if lint_flag {
                fields.push((
                    "lint",
                    json::array(diagnostics.iter().map(|d| {
                        json::object([
                            ("kind", json::string(d.kind.code())),
                            ("message", json::string(&d.message)),
                        ])
                    })),
                ));
            }
            writeln!(summary, "{}", json::object(fields))?;
        }
        Format::Csv => {
            writeln!(
                summary,
                "architecture,inputs,outputs,gates,dffs,area,min_clock,worst_slack,max_fanout,lint_diagnostics"
            )?;
            writeln!(
                summary,
                "{},{},{},{},{},{},{},{},{},{}",
                arch.name,
                stats.inputs,
                stats.outputs,
                stats.gates,
                stats.dffs,
                stats.area,
                report.critical_path,
                report.worst_slack,
                load.max_fanout,
                if lint_flag {
                    diagnostics.len().to_string()
                } else {
                    String::new()
                },
            )?;
        }
    }
    if let Some(path) = &verilog {
        let text = tta_netlist::to_verilog(&nl);
        if verilog_to_stdout {
            out.write_all(text.as_bytes())?;
        } else {
            std::fs::write(path, &text)
                .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
            writeln!(err, "wrote {} bytes of Verilog to {path}", text.len())?;
        }
    }
    if lint_flag && !diagnostics.is_empty() {
        return Err(CliError::runtime(format!(
            "lint found {} diagnostic(s) in {}",
            diagnostics.len(),
            arch.name
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// cache
// ---------------------------------------------------------------------

/// `ttadse cache <stats|clear> --cache-dir DIR`.
pub fn cache_cmd(
    args: &[String],
    out: &mut dyn Write,
    _err: &mut dyn Write,
) -> Result<(), CliError> {
    let mut common = CommonOpts::default();
    let mut action: Option<String> = None;
    let mut cursor = ArgCursor::new(args);
    while let Some(arg) = cursor.next() {
        if common.consume(&arg, &mut cursor)? {
            continue;
        }
        match arg.as_str() {
            "stats" | "clear" if action.is_none() => action = Some(arg),
            other => return Err(unknown_flag("cache", other)),
        }
    }
    common.validate()?;
    let action = action.unwrap_or_else(|| "stats".into());
    let Some(dir) = &common.cache_dir else {
        return Err(CliError::usage("ttadse cache needs --cache-dir"));
    };
    let cache = SweepCache::open(dir)
        .map_err(|e| CliError::runtime(format!("cannot open cache dir {}: {e}", dir.display())))?;
    match action.as_str() {
        "stats" => {
            let exists = cache.path().exists();
            match common.format {
                Format::Json => {
                    let doc = json::object([
                        ("command", json::string("cache-stats")),
                        ("path", json::string(&cache.path().display().to_string())),
                        ("exists", json::boolean(exists)),
                        ("entries", json::int(cache.len() as u64)),
                    ]);
                    writeln!(out, "{doc}")?;
                }
                Format::Csv => {
                    writeln!(out, "path,exists,entries")?;
                    writeln!(
                        out,
                        "{},{},{}",
                        cache.path().display(),
                        u8::from(exists),
                        cache.len()
                    )?;
                }
                Format::Table => {
                    writeln!(
                        out,
                        "cache {}: {} entries{}",
                        cache.path().display(),
                        cache.len(),
                        if exists { "" } else { " (no file yet)" }
                    )?;
                }
            }
        }
        "clear" => {
            let n = cache.len();
            cache
                .invalidate()
                .map_err(|e| CliError::runtime(format!("cannot clear cache: {e}")))?;
            writeln!(out, "cleared {n} entries from {}", cache.path().display())?;
        }
        _ => unreachable!("action is validated above"),
    }
    Ok(())
}
