//! Legacy alias for `ttadse fig6`.

fn main() -> std::process::ExitCode {
    ttadse_cli::legacy_figure_main("fig6")
}
