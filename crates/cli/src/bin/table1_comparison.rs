//! Legacy alias for `ttadse table1` (`--figure9` passes through).

fn main() -> std::process::ExitCode {
    ttadse_cli::legacy_figure_main("table1")
}
