//! Legacy alias for `ttadse fig2` (kept so pre-CLI invocations keep
//! working; `--csv` maps to `--format csv`).

fn main() -> std::process::ExitCode {
    ttadse_cli::legacy_figure_main("fig2")
}
