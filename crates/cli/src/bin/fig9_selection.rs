//! Legacy alias for `ttadse fig9`.

fn main() -> std::process::ExitCode {
    ttadse_cli::legacy_figure_main("fig9")
}
