//! Legacy alias for `ttadse fig8` (`--csv` maps to `--format csv`).

fn main() -> std::process::ExitCode {
    ttadse_cli::legacy_figure_main("fig8")
}
