//! The unified `ttadse` CLI — see `ttadse help`.

fn main() -> std::process::ExitCode {
    ttadse_cli::main_with_args(std::env::args().skip(1).collect())
}
