//! Legacy alias for `ttadse fig7`.

fn main() -> std::process::ExitCode {
    ttadse_cli::legacy_figure_main("fig7")
}
