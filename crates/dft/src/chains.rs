//! Multi-chain scan partitioning.
//!
//! The paper assumes "all scan chains are connected to one single scan
//! chain" and notes that with multiple chains "the total test cost will
//! change due to the scheduling of test patterns" — equally for full scan
//! and for the socket-scan part of the proposed approach. This module
//! performs the partitioning: balanced assignment of flip-flops to `k`
//! chains and the resulting per-chain lengths and test time.

use tta_netlist::Netlist;

use crate::testtime::full_scan_cycles;

/// A partition of a design's flip-flops into scan chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainPlan {
    /// Flip-flop instance names per chain, in shift order.
    pub chains: Vec<Vec<String>>,
}

impl ChainPlan {
    /// Balanced partition of `nl`'s flip-flops into `k` chains
    /// (declaration order, round-off spread across the first chains).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn balanced(nl: &Netlist, k: usize) -> Self {
        assert!(k >= 1, "at least one chain");
        let names: Vec<String> = nl.dffs().iter().map(|ff| ff.name().to_string()).collect();
        let n = names.len();
        let base = n / k;
        let extra = n % k;
        let mut chains = Vec::with_capacity(k);
        let mut it = names.into_iter();
        for c in 0..k {
            let len = base + usize::from(c < extra);
            chains.push(it.by_ref().take(len).collect());
        }
        ChainPlan { chains }
    }

    /// Number of chains.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Length of the longest chain — the shift-time bottleneck.
    pub fn max_length(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Imbalance: longest − shortest chain.
    pub fn imbalance(&self) -> usize {
        let max = self.max_length();
        let min = self.chains.iter().map(Vec::len).min().unwrap_or(0);
        max - min
    }

    /// Test time for `np` patterns shifted through this plan (all chains
    /// shift in parallel; the longest dominates).
    pub fn test_cycles(&self, np: usize) -> usize {
        full_scan_cycles(np, self.max_length())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_netlist::components;

    #[test]
    fn balanced_partition_covers_all_ffs() {
        let alu = components::alu(8);
        let total = alu.netlist.dff_count();
        for k in [1usize, 2, 3, 4, 7] {
            let plan = ChainPlan::balanced(&alu.netlist, k);
            assert_eq!(plan.chain_count(), k);
            let sum: usize = plan.chains.iter().map(Vec::len).sum();
            assert_eq!(sum, total, "k={k}");
            assert!(plan.imbalance() <= 1, "k={k}: {}", plan.imbalance());
        }
    }

    #[test]
    fn more_chains_less_time() {
        let alu = components::alu(8);
        let one = ChainPlan::balanced(&alu.netlist, 1).test_cycles(50);
        let four = ChainPlan::balanced(&alu.netlist, 4).test_cycles(50);
        assert!(four < one);
    }

    #[test]
    fn single_chain_matches_flat_model() {
        let cmp = components::cmp(8);
        let plan = ChainPlan::balanced(&cmp.netlist, 1);
        assert_eq!(
            plan.test_cycles(20),
            full_scan_cycles(20, cmp.netlist.dff_count())
        );
    }

    #[test]
    fn more_chains_than_ffs_degenerates_gracefully() {
        let imm = components::immediate(4);
        let n = imm.netlist.dff_count();
        let plan = ChainPlan::balanced(&imm.netlist, n + 3);
        assert_eq!(plan.chain_count(), n + 3);
        assert_eq!(plan.max_length(), 1);
    }
}
