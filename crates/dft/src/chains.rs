//! Multi-chain scan partitioning.
//!
//! The paper assumes "all scan chains are connected to one single scan
//! chain" and notes that with multiple chains "the total test cost will
//! change due to the scheduling of test patterns" — equally for full scan
//! and for the socket-scan part of the proposed approach. This module
//! performs the partitioning: balanced assignment of flip-flops to `k`
//! chains and the resulting per-chain lengths and test time.

use tta_netlist::Netlist;

use crate::testtime::full_scan_cycles;

/// A partition of a design's flip-flops into scan chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainPlan {
    /// Flip-flop instance names per chain, in shift order.
    pub chains: Vec<Vec<String>>,
}

impl ChainPlan {
    /// Per-chain lengths of a balanced partition of `n_ffs` flip-flops
    /// into `k` chains (longest first; round-off spread across the
    /// first chains). This is the netlist-free core of
    /// [`ChainPlan::balanced`], usable by cost models that know a
    /// component's flip-flop *count* without rebuilding its netlist.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn balanced_lengths(n_ffs: usize, k: usize) -> Vec<usize> {
        assert!(k >= 1, "at least one chain");
        let base = n_ffs / k;
        let extra = n_ffs % k;
        (0..k).map(|c| base + usize::from(c < extra)).collect()
    }

    /// Balanced partition of `nl`'s flip-flops into `k` chains
    /// (declaration order, round-off spread across the first chains).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn balanced(nl: &Netlist, k: usize) -> Self {
        let names: Vec<String> = nl.dffs().iter().map(|ff| ff.name().to_string()).collect();
        let mut it = names.into_iter();
        let chains = Self::balanced_lengths(it.len(), k)
            .into_iter()
            .map(|len| it.by_ref().take(len).collect())
            .collect();
        ChainPlan { chains }
    }

    /// Number of chains.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Length of the longest chain — the shift-time bottleneck.
    pub fn max_length(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Imbalance: longest − shortest chain.
    pub fn imbalance(&self) -> usize {
        let max = self.max_length();
        let min = self.chains.iter().map(Vec::len).min().unwrap_or(0);
        max - min
    }

    /// Test time for `np` patterns shifted through this plan (all chains
    /// shift in parallel; the longest dominates).
    pub fn test_cycles(&self, np: usize) -> usize {
        full_scan_cycles(np, self.max_length())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_netlist::components;

    #[test]
    fn balanced_partition_covers_all_ffs() {
        let alu = components::alu(8);
        let total = alu.netlist.dff_count();
        for k in [1usize, 2, 3, 4, 7] {
            let plan = ChainPlan::balanced(&alu.netlist, k);
            assert_eq!(plan.chain_count(), k);
            let sum: usize = plan.chains.iter().map(Vec::len).sum();
            assert_eq!(sum, total, "k={k}");
            assert!(plan.imbalance() <= 1, "k={k}: {}", plan.imbalance());
        }
    }

    #[test]
    fn balanced_lengths_match_the_netlist_partition() {
        let alu = components::alu(8);
        for k in [1usize, 2, 3, 5] {
            let plan = ChainPlan::balanced(&alu.netlist, k);
            let lengths: Vec<usize> = plan.chains.iter().map(Vec::len).collect();
            assert_eq!(
                lengths,
                ChainPlan::balanced_lengths(alu.netlist.dff_count(), k)
            );
        }
        assert_eq!(ChainPlan::balanced_lengths(7, 3), vec![3, 2, 2]);
        assert_eq!(ChainPlan::balanced_lengths(0, 2), vec![0, 0]);
    }

    #[test]
    fn more_chains_less_time() {
        let alu = components::alu(8);
        let one = ChainPlan::balanced(&alu.netlist, 1).test_cycles(50);
        let four = ChainPlan::balanced(&alu.netlist, 4).test_cycles(50);
        assert!(four < one);
    }

    #[test]
    fn single_chain_matches_flat_model() {
        let cmp = components::cmp(8);
        let plan = ChainPlan::balanced(&cmp.netlist, 1);
        assert_eq!(
            plan.test_cycles(20),
            full_scan_cycles(20, cmp.netlist.dff_count())
        );
    }

    #[test]
    fn more_chains_than_ffs_degenerates_gracefully() {
        let imm = components::immediate(4);
        let n = imm.netlist.dff_count();
        let plan = ChainPlan::balanced(&imm.netlist, n + 3);
        assert_eq!(plan.chain_count(), n + 3);
        assert_eq!(plan.max_length(), 1);
    }
}
