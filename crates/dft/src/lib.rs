//! Design-for-test infrastructure: scan insertion, scan-based test-time
//! models, and march tests for (multi-port) register files.
//!
//! The paper's methodology rests on three DfT ingredients:
//!
//! 1. **Full scan as the baseline** (Table 1, column "full scan"): every
//!    flip-flop is replaced by a mux-scan flip-flop and stitched into a
//!    chain of length `nl`; applying `np` patterns then costs
//!    `np·(nl+1) + nl` cycles. [`scan`] implements the transformation
//!    structurally and [`testtime`] the cost model.
//! 2. **Scan for the sockets only** in the proposed approach (eq. 13):
//!    `fts = np · nl` over the socket scan chains.
//! 3. **March tests** for register files implemented as multi-port
//!    memories (eq. 12, refs \[14\]\[15\]): [`march`] provides MATS+,
//!    March C− and March B with a behavioural fault simulator
//!    ([`memory`]) that verifies their coverage of stuck-at, transition
//!    and coupling faults.
//!
//! # Quickstart
//!
//! ```
//! use tta_netlist::components;
//! use tta_dft::scan::insert_scan;
//! use tta_dft::testtime::full_scan_cycles;
//!
//! let alu = components::alu(8);
//! let scanned = insert_scan(&alu.netlist);
//! assert_eq!(scanned.chain_length(), alu.netlist.dff_count());
//! // 10 patterns through the chain:
//! let cycles = full_scan_cycles(10, scanned.chain_length());
//! assert_eq!(cycles, 10 * (scanned.chain_length() + 1) + scanned.chain_length());
//! ```

#![warn(missing_docs)]

pub mod chains;
pub mod interconnect;
pub mod march;
pub mod memory;
pub mod misr;
pub mod scan;
pub mod testtime;

pub use chains::ChainPlan;
pub use interconnect::BusFault;
pub use march::{MarchAlgorithm, MarchElement, MarchOp, MarchTest};
pub use memory::{MemFault, MemFaultKind, MultiPortMemory};
pub use misr::{Lfsr, Misr};
pub use scan::{insert_scan, ScanDesign};
