//! Test application time models.
//!
//! Table 1 of the paper compares test *cycles*: for full scan the chain
//! must be (un)loaded around every pattern; for the proposed functional
//! approach the cycle count comes from the transport-timing relations
//! (handled by the test-cost functions in `tta-core`).

/// Cycles to apply `np` patterns through a single scan chain of length
/// `nl`: each pattern costs `nl` shift-in cycles (overlapped with the
/// previous pattern's shift-out) plus one capture cycle, plus a final
/// `nl`-cycle unload.
pub fn full_scan_cycles(np: usize, nl: usize) -> usize {
    if np == 0 {
        return 0;
    }
    np * (nl + 1) + nl
}

/// Cycles to apply `np` patterns over `chains` balanced scan chains
/// covering `total_ffs` flip-flops (multi-chain generalisation; the paper
/// uses `chains = 1`).
pub fn multi_chain_scan_cycles(np: usize, total_ffs: usize, chains: usize) -> usize {
    assert!(chains >= 1, "at least one chain");
    let nl = total_ffs.div_ceil(chains);
    full_scan_cycles(np, nl)
}

/// Scan shift cycles only (`np` loads of an `nl` chain) — eq. (13) of the
/// paper costs the socket test as `fts = np · nl`.
pub fn socket_scan_cost(np: usize, nl: usize) -> usize {
    np * nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_patterns_cost_nothing() {
        assert_eq!(full_scan_cycles(0, 100), 0);
    }

    #[test]
    fn single_chain_formula() {
        assert_eq!(full_scan_cycles(10, 58), 10 * 59 + 58);
    }

    #[test]
    fn more_chains_fewer_cycles() {
        let one = multi_chain_scan_cycles(20, 100, 1);
        let four = multi_chain_scan_cycles(20, 100, 4);
        assert!(four < one);
        assert_eq!(four, full_scan_cycles(20, 25));
    }

    #[test]
    fn socket_cost_is_linear() {
        // Paper: fts = 14 patterns * 58 FFs = 812 for the ALU sockets.
        assert_eq!(socket_scan_cost(14, 58), 812);
        assert_eq!(socket_scan_cost(14, 75), 1050);
    }
}
