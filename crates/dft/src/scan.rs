//! Structural scan insertion (mux-scan style).
//!
//! Every D flip-flop `ff` is given a scan multiplexer
//! `d' = scan_en ? scan_prev : d`, and all flip-flops are stitched into a
//! single chain `scan_in → ff0 → ff1 → … → scan_out` in declaration order
//! (the paper likewise assumes "all scan chains are connected to one
//! single scan chain").

use tta_netlist::{NetId, Netlist, NetlistBuilder};

/// A netlist after scan insertion, plus chain bookkeeping.
#[derive(Debug, Clone)]
pub struct ScanDesign {
    netlist: Netlist,
    chain: Vec<String>,
    extra_area: f64,
}

impl ScanDesign {
    /// The scanned netlist (original PIs/POs plus `scan_in`, `scan_en`
    /// inputs and a `scan_out` output).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Flip-flop instance names in chain order (`scan_in` side first).
    pub fn chain(&self) -> &[String] {
        &self.chain
    }

    /// Chain length `nl` — the number the paper's eq. (13) consumes.
    pub fn chain_length(&self) -> usize {
        self.chain.len()
    }

    /// Area added by the scan muxes, in NAND2 gate equivalents.
    pub fn area_overhead(&self) -> f64 {
        self.extra_area
    }
}

/// Inserts a single scan chain into `nl`.
///
/// The transformation rebuilds the netlist gate-for-gate, appending one
/// mux per flip-flop; combinational logic, port order and names are
/// preserved.
pub fn insert_scan(nl: &Netlist) -> ScanDesign {
    use tta_netlist::netlist::NetDriver;

    let mut b = NetlistBuilder::new(format!("{}_scan", nl.name()));
    let mut map: Vec<Option<NetId>> = vec![None; nl.net_count()];

    // Ports first (same order), then the scan controls.
    for &pi in nl.primary_inputs() {
        let name = nl.net(pi).name().unwrap_or("pi").to_string();
        map[pi.index()] = Some(b.input(name));
    }
    let scan_in = b.input("scan_in");
    let scan_en = b.input("scan_en");

    // Pre-create every flip-flop as a feedback register so Q nets exist
    // before the combinational cones are rebuilt.
    let mut ff_handles = Vec::with_capacity(nl.dff_count());
    for ff in nl.dffs() {
        let (q, id) = b.dff_feedback(ff.name());
        map[ff.q().index()] = Some(q);
        ff_handles.push(id);
    }

    // Constants.
    for (i, net) in nl.nets().iter().enumerate() {
        match net.driver() {
            NetDriver::Const0 => map[i] = Some(b.const0()),
            NetDriver::Const1 => map[i] = Some(b.const1()),
            _ => {}
        }
    }

    // Combinational gates in topological order.
    for &gid in nl.topo_order() {
        let gate = nl.gate(gid);
        let ins: Vec<NetId> = gate
            .inputs()
            .iter()
            .map(|n| map[n.index()].expect("topological order guarantees inputs exist"))
            .collect();
        map[gate.output().index()] = Some(b.gate(gate.kind(), &ins));
    }

    // Stitch the chain: d' = mux(scan_en, d, prev).
    let mut prev = scan_in;
    let mut chain = Vec::with_capacity(nl.dff_count());
    for (ff, handle) in nl.dffs().iter().zip(ff_handles) {
        let d = map[ff.d().index()].expect("D cone rebuilt");
        let d_scan = b.mux2(scan_en, d, prev);
        b.set_dff_d(handle, d_scan);
        prev = map[ff.q().index()].expect("Q exists");
        chain.push(ff.name().to_string());
    }

    // Original primary outputs, then scan_out.
    for (name, net) in nl.primary_outputs() {
        b.output(name.clone(), map[net.index()].expect("PO cone rebuilt"));
    }
    b.output("scan_out", prev);

    let scanned = b.finish();
    let extra_area = scanned.area() - nl.area();
    ScanDesign {
        netlist: scanned,
        chain,
        extra_area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_netlist::sim::OwnedSeqSim;
    use tta_netlist::{components, NetlistBuilder};

    /// Shifts `bits` into the chain (LSB-first) with scan_en=1.
    fn scan_load(sim: &mut OwnedSeqSim, bits: &[bool]) {
        for &bit in bits {
            sim.step_words(&[("scan_en", 1), ("scan_in", u64::from(bit))]);
        }
    }

    /// Unloads `n` bits from scan_out (first bit observed immediately).
    fn scan_unload(sim: &mut OwnedSeqSim, n: usize) -> Vec<bool> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            sim.step_words(&[("scan_en", 1)]);
            out.push(sim.output_words()["scan_out"] == 1);
        }
        out
    }

    #[test]
    fn chain_shifts_data_through() {
        let mut b = NetlistBuilder::new("regs");
        let d = b.input("d");
        let q0 = b.dff("r0", d);
        let q1 = b.dff("r1", q0);
        let q2 = b.dff("r2", q1);
        b.output("q", q2);
        let nl = b.finish();
        let scanned = insert_scan(&nl);
        assert_eq!(scanned.chain_length(), 3);

        let mut sim = OwnedSeqSim::new(scanned.netlist().clone());
        scan_load(&mut sim, &[true, false, true]);
        // Chain order r0,r1,r2; after 3 shifts, first bit sits in r2.
        let state: Vec<bool> = sim.state().iter().map(|w| w & 1 == 1).collect();
        assert_eq!(state, vec![true, false, true]);
    }

    #[test]
    fn load_then_unload_roundtrips() {
        let alu = components::alu(4);
        let scanned = insert_scan(&alu.netlist);
        let n = scanned.chain_length();
        let mut sim = OwnedSeqSim::new(scanned.netlist().clone());
        let pattern: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        scan_load(&mut sim, &pattern);
        let got = scan_unload(&mut sim, n);
        // Unloading reverses the chain order relative to loading.
        let expect: Vec<bool> = pattern.iter().rev().copied().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn functional_behaviour_preserved_when_scan_disabled() {
        let alu = components::alu(4);
        let scanned = insert_scan(&alu.netlist);
        let mut plain = OwnedSeqSim::new(alu.netlist.clone());
        let mut scan = OwnedSeqSim::new(scanned.netlist().clone());
        let stim: &[&[(&str, u64)]] = &[
            &[
                ("o_in", 9),
                ("t_in", 3),
                ("en_o", 1),
                ("en_t", 1),
                ("op", 0),
            ],
            &[],
            &[],
        ];
        for step in stim {
            plain.step_words(step);
            scan.step_words(step); // scan_en defaults to 0
        }
        assert_eq!(plain.output_words()["r"], scan.output_words()["r"]);
        assert_eq!(plain.output_words()["r"], 12);
    }

    #[test]
    fn scan_adds_area() {
        let alu = components::alu(4);
        let scanned = insert_scan(&alu.netlist);
        assert!(scanned.area_overhead() > 0.0);
        // One mux per flip-flop.
        assert_eq!(
            scanned.netlist().gate_count(),
            alu.netlist.gate_count() + alu.netlist.dff_count()
        );
    }
}
