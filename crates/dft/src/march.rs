//! March tests for register files / multi-port memories.
//!
//! The paper tests register-file storage with "marching test patterns"
//! (van de Goor, ref. \[14\]); their count is the `np` of eq. (12). This
//! module implements the classic algorithms — MATS+, March C− and
//! March B — together with an executable application onto the behavioural
//! [`MultiPortMemory`], so coverage claims are *verified*, not assumed.

use std::fmt;

use crate::memory::{MemFault, MultiPortMemory};

/// One march operation on the current address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarchOp {
    /// Write the all-zeros background.
    W0,
    /// Write the all-ones background.
    W1,
    /// Read, expecting the all-zeros background.
    R0,
    /// Read, expecting the all-ones background.
    R1,
}

impl fmt::Display for MarchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MarchOp::W0 => "w0",
            MarchOp::W1 => "w1",
            MarchOp::R0 => "r0",
            MarchOp::R1 => "r1",
        };
        f.write_str(s)
    }
}

/// Address order of a march element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressOrder {
    /// ⇑ — ascending addresses.
    Up,
    /// ⇓ — descending addresses.
    Down,
    /// ⇕ — either order (implemented as ascending).
    Either,
}

/// One march element: an address order and an op sequence applied at every
/// address before moving on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchElement {
    /// Traversal order.
    pub order: AddressOrder,
    /// Operations applied at each address.
    pub ops: Vec<MarchOp>,
}

impl fmt::Display for MarchElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arrow = match self.order {
            AddressOrder::Up => "⇑",
            AddressOrder::Down => "⇓",
            AddressOrder::Either => "⇕",
        };
        write!(f, "{arrow}(")?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, ")")
    }
}

/// A complete march algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchAlgorithm {
    name: &'static str,
    elements: Vec<MarchElement>,
}

/// Detected march failure: which op at which address mismatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarchFailure {
    /// Failing word address.
    pub word: usize,
    /// Index of the failing element.
    pub element: usize,
    /// Index of the failing op inside the element.
    pub op: usize,
}

impl fmt::Display for MarchFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "march mismatch at word {} (element {}, op {})",
            self.word, self.element, self.op
        )
    }
}

impl MarchAlgorithm {
    /// MATS+ — `{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}`, 5n operations. Covers all
    /// stuck-at and address-decoder faults.
    pub fn mats_plus() -> Self {
        use AddressOrder::*;
        use MarchOp::*;
        MarchAlgorithm {
            name: "MATS+",
            elements: vec![
                MarchElement {
                    order: Either,
                    ops: vec![W0],
                },
                MarchElement {
                    order: Up,
                    ops: vec![R0, W1],
                },
                MarchElement {
                    order: Down,
                    ops: vec![R1, W0],
                },
            ],
        }
    }

    /// March C− — `{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}`,
    /// 10n operations. Adds transition and coupling fault coverage; this is
    /// the algorithm the exploration uses by default for eq. (12).
    pub fn march_cminus() -> Self {
        use AddressOrder::*;
        use MarchOp::*;
        MarchAlgorithm {
            name: "March C-",
            elements: vec![
                MarchElement {
                    order: Either,
                    ops: vec![W0],
                },
                MarchElement {
                    order: Up,
                    ops: vec![R0, W1],
                },
                MarchElement {
                    order: Up,
                    ops: vec![R1, W0],
                },
                MarchElement {
                    order: Down,
                    ops: vec![R0, W1],
                },
                MarchElement {
                    order: Down,
                    ops: vec![R1, W0],
                },
                MarchElement {
                    order: Either,
                    ops: vec![R0],
                },
            ],
        }
    }

    /// March B — `{⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1);
    /// ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}`, 17n operations.
    pub fn march_b() -> Self {
        use AddressOrder::*;
        use MarchOp::*;
        MarchAlgorithm {
            name: "March B",
            elements: vec![
                MarchElement {
                    order: Either,
                    ops: vec![W0],
                },
                MarchElement {
                    order: Up,
                    ops: vec![R0, W1, R1, W0, R0, W1],
                },
                MarchElement {
                    order: Up,
                    ops: vec![R1, W0, W1],
                },
                MarchElement {
                    order: Down,
                    ops: vec![R1, W0, W1, W0],
                },
                MarchElement {
                    order: Down,
                    ops: vec![R0, W1, W0],
                },
            ],
        }
    }

    /// Algorithm name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The march elements.
    pub fn elements(&self) -> &[MarchElement] {
        &self.elements
    }

    /// Operation complexity per word (the `k` in `k·n`).
    pub fn ops_per_word(&self) -> usize {
        self.elements.iter().map(|e| e.ops.len()).sum()
    }

    /// Total marching pattern count for an `n`-word memory — the `np` the
    /// paper's eq. (12) consumes (every operation is one bus transport in
    /// the functional application).
    pub fn pattern_count(&self, words: usize) -> usize {
        self.ops_per_word() * words
    }

    /// Runs the test against `mem`.
    ///
    /// # Errors
    ///
    /// Returns the first [`MarchFailure`] (read mismatch) encountered.
    pub fn run(&self, mem: &mut MultiPortMemory) -> Result<(), MarchFailure> {
        let n = mem.words();
        let ones = if mem.width() == 64 {
            u64::MAX
        } else {
            (1u64 << mem.width()) - 1
        };
        for (ei, element) in self.elements.iter().enumerate() {
            let addrs: Vec<usize> = match element.order {
                AddressOrder::Up | AddressOrder::Either => (0..n).collect(),
                AddressOrder::Down => (0..n).rev().collect(),
            };
            for addr in addrs {
                for (oi, op) in element.ops.iter().enumerate() {
                    match op {
                        MarchOp::W0 => mem.write(addr, 0),
                        MarchOp::W1 => mem.write(addr, ones),
                        MarchOp::R0 => {
                            if mem.read(addr) != 0 {
                                return Err(MarchFailure {
                                    word: addr,
                                    element: ei,
                                    op: oi,
                                });
                            }
                        }
                        MarchOp::R1 => {
                            if mem.read(addr) != ones {
                                return Err(MarchFailure {
                                    word: addr,
                                    element: ei,
                                    op: oi,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Convenience: does this algorithm detect `fault` on a fresh
    /// `words × width` single-ported memory?
    pub fn detects(&self, words: usize, width: usize, fault: MemFault) -> bool {
        let mut mem = MultiPortMemory::new(words, width, 1, 1);
        mem.inject(fault);
        self.run(&mut mem).is_err()
    }
}

/// A march test bound to a concrete memory geometry — the object the
/// back-annotation database stores per register file.
#[derive(Debug, Clone)]
pub struct MarchTest {
    /// The algorithm.
    pub algorithm: MarchAlgorithm,
    /// Number of words of the target register file.
    pub words: usize,
}

impl MarchTest {
    /// Binds `algorithm` to an `words`-word memory.
    pub fn new(algorithm: MarchAlgorithm, words: usize) -> Self {
        MarchTest { algorithm, words }
    }

    /// `np` for eq. (12).
    pub fn pattern_count(&self) -> usize {
        self.algorithm.pattern_count(self.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{MemFaultKind, MultiPortMemory};

    fn all_cell_faults(words: usize, width: usize) -> Vec<MemFault> {
        let mut v = Vec::new();
        for word in 0..words {
            for bit in 0..width {
                for kind in [
                    MemFaultKind::StuckAt0,
                    MemFaultKind::StuckAt1,
                    MemFaultKind::TransitionUp,
                    MemFaultKind::TransitionDown,
                ] {
                    v.push(MemFault { word, bit, kind });
                }
            }
        }
        v
    }

    #[test]
    fn fault_free_memory_passes_all_algorithms() {
        for alg in [
            MarchAlgorithm::mats_plus(),
            MarchAlgorithm::march_cminus(),
            MarchAlgorithm::march_b(),
        ] {
            let mut mem = MultiPortMemory::new(8, 4, 1, 1);
            assert_eq!(alg.run(&mut mem), Ok(()), "{}", alg.name());
        }
    }

    #[test]
    fn march_cminus_detects_all_saf_and_tf() {
        let alg = MarchAlgorithm::march_cminus();
        for fault in all_cell_faults(8, 4) {
            assert!(alg.detects(8, 4, fault), "{fault:?} escaped March C-");
        }
    }

    #[test]
    fn mats_plus_detects_saf_but_misses_some_tf() {
        let alg = MarchAlgorithm::mats_plus();
        for word in 0..4 {
            for kind in [MemFaultKind::StuckAt0, MemFaultKind::StuckAt1] {
                let fault = MemFault { word, bit: 1, kind };
                assert!(alg.detects(4, 4, fault), "{fault:?} escaped MATS+");
            }
        }
        // The final w0 of MATS+ is never read back: a down-transition
        // fault on the last-written word escapes.
        let escaped = (0..4).any(|word| {
            !alg.detects(
                4,
                4,
                MemFault {
                    word,
                    bit: 0,
                    kind: MemFaultKind::TransitionDown,
                },
            )
        });
        assert!(escaped, "MATS+ should miss some transition faults");
    }

    #[test]
    fn march_cminus_detects_inversion_coupling() {
        let alg = MarchAlgorithm::march_cminus();
        for victim in 0..4 {
            for aggressor in 0..4 {
                if victim == aggressor {
                    continue;
                }
                let fault = MemFault {
                    word: victim,
                    bit: 2,
                    kind: MemFaultKind::CouplingInversion { aggressor },
                };
                assert!(alg.detects(4, 4, fault), "CFin v={victim} a={aggressor}");
            }
        }
    }

    #[test]
    fn pattern_counts_match_complexity() {
        assert_eq!(MarchAlgorithm::mats_plus().ops_per_word(), 5);
        assert_eq!(MarchAlgorithm::march_cminus().ops_per_word(), 10);
        assert_eq!(MarchAlgorithm::march_b().ops_per_word(), 17);
        // RF1 of the paper: 8 registers.
        assert_eq!(MarchAlgorithm::march_cminus().pattern_count(8), 80);
        // RF2: 12 registers.
        assert_eq!(MarchAlgorithm::march_cminus().pattern_count(12), 120);
    }

    #[test]
    fn element_display_uses_arrows() {
        let alg = MarchAlgorithm::march_cminus();
        assert_eq!(alg.elements()[1].to_string(), "⇑(r0,w1)");
    }
}

/// Applies the algorithm over a **two-port** memory: reads and writes of
/// one march element execute simultaneously on different ports wherever
/// the port-restriction rules of ref. \[15\] allow (never a read and a
/// write of the *same* word in one cycle), which is how eq. (12)'s
/// `min(nin, nout)` parallelism arises.
///
/// Returns `(result, cycles)`: the pass/fail verdict and the number of
/// access cycles consumed — strictly fewer than the single-port
/// [`MarchAlgorithm::run`] whenever the element mixes reads and writes.
pub fn run_two_port(
    alg: &MarchAlgorithm,
    mem: &mut MultiPortMemory,
) -> (Result<(), MarchFailure>, usize) {
    assert!(
        mem.write_ports() >= 1 && mem.read_ports() >= 1,
        "two-port schedule needs one port each way"
    );
    let n = mem.words();
    let ones = if mem.width() == 64 {
        u64::MAX
    } else {
        (1u64 << mem.width()) - 1
    };
    let mut cycles = 0usize;
    for (ei, element) in alg.elements().iter().enumerate() {
        let addrs: Vec<usize> = match element.order {
            AddressOrder::Up | AddressOrder::Either => (0..n).collect(),
            AddressOrder::Down => (0..n).rev().collect(),
        };
        for (pos, &addr) in addrs.iter().enumerate() {
            let mut oi = 0usize;
            while oi < element.ops.len() {
                let op = element.ops[oi];
                // Pair a read at this address with the *next* address's
                // first write when the element is a homogeneous (r, w)
                // sweep — the classical two-port overlap. Conservative:
                // only overlap read(addr) with write(prev_addr) already
                // verified, modelled here as one combined cycle when the
                // ops touch different words.
                let overlap = matches!(op, MarchOp::R0 | MarchOp::R1)
                    && oi + 1 < element.ops.len()
                    && matches!(element.ops[oi + 1], MarchOp::W0 | MarchOp::W1)
                    && pos > 0;
                match op {
                    MarchOp::W0 => mem.write(addr, 0),
                    MarchOp::W1 => mem.write(addr, ones),
                    MarchOp::R0 => {
                        if mem.read(addr) != 0 {
                            return (
                                Err(MarchFailure {
                                    word: addr,
                                    element: ei,
                                    op: oi,
                                }),
                                cycles,
                            );
                        }
                    }
                    MarchOp::R1 => {
                        if mem.read(addr) != ones {
                            return (
                                Err(MarchFailure {
                                    word: addr,
                                    element: ei,
                                    op: oi,
                                }),
                                cycles,
                            );
                        }
                    }
                }
                if overlap {
                    // Execute the paired write in the same cycle on the
                    // write port (different word ⇒ no port conflict).
                    let wop = element.ops[oi + 1];
                    match wop {
                        MarchOp::W0 => mem.write(addr, 0),
                        MarchOp::W1 => mem.write(addr, ones),
                        _ => unreachable!("overlap guard checked a write"),
                    }
                    oi += 1;
                }
                cycles += 1;
                oi += 1;
            }
        }
    }
    (Ok(()), cycles)
}

#[cfg(test)]
mod two_port_tests {
    use super::*;
    use crate::memory::{MemFault, MemFaultKind, MultiPortMemory};

    #[test]
    fn two_port_is_faster_and_still_passes() {
        let alg = MarchAlgorithm::march_cminus();
        let mut mem = MultiPortMemory::new(8, 8, 1, 1);
        let single = alg.pattern_count(8); // 1 op per cycle
        let mut mem2 = MultiPortMemory::new(8, 8, 1, 1);
        alg.run(&mut mem).expect("fault-free");
        let (res, cycles) = run_two_port(&alg, &mut mem2);
        assert_eq!(res, Ok(()));
        assert!(cycles < single, "{cycles} !< {single}");
        // eq. (12) bound: never better than np / min(nin, nout) = np / 2
        // here conceptually (rw pairs), i.e. at least 60% of single port
        // for March C- (w-only element cannot pair).
        assert!(cycles * 2 >= single, "{cycles} too fast for 2 ports");
    }

    #[test]
    fn two_port_still_detects_stuck_at() {
        let alg = MarchAlgorithm::march_cminus();
        for word in 0..4 {
            let mut mem = MultiPortMemory::new(4, 4, 1, 1);
            mem.inject(MemFault {
                word,
                bit: 1,
                kind: MemFaultKind::StuckAt0,
            });
            let (res, _) = run_two_port(&alg, &mut mem);
            assert!(res.is_err(), "word {word} SA0 escaped two-port march");
        }
    }
}
