//! Behavioural multi-port memory with injectable faults — the model under
//! which the march algorithms of [`crate::march`] are validated.
//!
//! The paper's register files are implemented as multi-port memories
//! (ref. \[15\], Hamdioui & van de Goor) and tested with marching patterns
//! (ref. \[14\]); this module provides the classical memory fault models:
//! stuck-at cells, transition faults, and inversion/idempotent coupling
//! faults, plus port-interference restrictions for simultaneous accesses.

use std::collections::HashSet;

/// Kinds of memory cell faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemFaultKind {
    /// Cell stuck at 0.
    StuckAt0,
    /// Cell stuck at 1.
    StuckAt1,
    /// Up-transition fault: cell cannot go 0 → 1.
    TransitionUp,
    /// Down-transition fault: cell cannot go 1 → 0.
    TransitionDown,
    /// Inversion coupling: a transition in the aggressor inverts the
    /// victim.
    CouplingInversion {
        /// The coupled (aggressor) cell index.
        aggressor: usize,
    },
    /// Idempotent coupling: an up-transition of the aggressor forces the
    /// victim to `forced_value`.
    CouplingIdempotent {
        /// The coupled (aggressor) cell index.
        aggressor: usize,
        /// Value forced onto the victim.
        forced_value: bool,
    },
}

/// A fault on one cell (word, bit) of the memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemFault {
    /// Victim word address.
    pub word: usize,
    /// Victim bit position.
    pub bit: usize,
    /// Fault kind.
    pub kind: MemFaultKind,
}

/// A behavioural `words × width` memory with `nin` write and `nout` read
/// ports and an optional injected fault.
#[derive(Debug, Clone)]
pub struct MultiPortMemory {
    words: usize,
    width: usize,
    nin: usize,
    nout: usize,
    cells: Vec<u64>,
    fault: Option<MemFault>,
}

impl MultiPortMemory {
    /// Creates a fault-free memory initialised to zero.
    pub fn new(words: usize, width: usize, nin: usize, nout: usize) -> Self {
        assert!(width <= 64, "behavioural model is word-at-a-time u64");
        MultiPortMemory {
            words,
            width,
            nin,
            nout,
            cells: vec![0; words],
            fault: None,
        }
    }

    /// Number of words.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Write-port count.
    pub fn write_ports(&self) -> usize {
        self.nin
    }

    /// Read-port count.
    pub fn read_ports(&self) -> usize {
        self.nout
    }

    /// Injects `fault` (replacing any previous one) and re-applies cell
    /// forcing for stuck-at faults.
    pub fn inject(&mut self, fault: MemFault) {
        assert!(fault.word < self.words && fault.bit < self.width);
        self.fault = Some(fault);
        self.apply_static_fault(fault.word);
    }

    /// Removes the injected fault.
    pub fn clear_fault(&mut self) {
        self.fault = None;
    }

    fn apply_static_fault(&mut self, word: usize) {
        if let Some(f) = self.fault {
            if f.word == word {
                match f.kind {
                    MemFaultKind::StuckAt0 => self.cells[word] &= !(1 << f.bit),
                    MemFaultKind::StuckAt1 => self.cells[word] |= 1 << f.bit,
                    _ => {}
                }
            }
        }
    }

    /// Writes `value` to `addr` through one write port.
    pub fn write(&mut self, addr: usize, value: u64) {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1 << self.width) - 1
        };
        let value = value & mask;
        let old = self.cells[addr];
        let mut newv = value;
        if let Some(f) = self.fault {
            if f.word == addr {
                let bit = 1u64 << f.bit;
                match f.kind {
                    MemFaultKind::StuckAt0 => newv &= !bit,
                    MemFaultKind::StuckAt1 => newv |= bit,
                    // Cannot raise the bit if it was 0.
                    MemFaultKind::TransitionUp if old & bit == 0 => {
                        newv &= !bit | (old & bit);
                    }
                    MemFaultKind::TransitionDown if old & bit != 0 => {
                        newv |= bit;
                    }
                    _ => {}
                }
            }
            // Coupling: writing the aggressor word can corrupt the victim.
            match f.kind {
                MemFaultKind::CouplingInversion { aggressor } if aggressor == addr => {
                    let abit = 1u64 << f.bit;
                    let rose = old & abit == 0 && value & abit != 0;
                    let fell = old & abit != 0 && value & abit == 0;
                    if (rose || fell) && f.word != addr {
                        self.cells[f.word] ^= 1 << f.bit;
                    }
                }
                MemFaultKind::CouplingIdempotent {
                    aggressor,
                    forced_value,
                } if aggressor == addr => {
                    let abit = 1u64 << f.bit;
                    let rose = old & abit == 0 && value & abit != 0;
                    if rose && f.word != addr {
                        if forced_value {
                            self.cells[f.word] |= 1 << f.bit;
                        } else {
                            self.cells[f.word] &= !(1 << f.bit);
                        }
                    }
                }
                _ => {}
            }
        }
        self.cells[addr] = newv;
    }

    /// Reads `addr` through one read port.
    pub fn read(&self, addr: usize) -> u64 {
        let mut v = self.cells[addr];
        if let Some(f) = self.fault {
            if f.word == addr {
                match f.kind {
                    MemFaultKind::StuckAt0 => v &= !(1 << f.bit),
                    MemFaultKind::StuckAt1 => v |= 1 << f.bit,
                    _ => {}
                }
            }
        }
        v
    }

    /// Checks a simultaneous multi-port access plan for port conflicts
    /// (ref. \[15\]): two writes to the same word, or a read and a write of
    /// the same word in the same cycle, are forbidden.
    pub fn check_port_plan(writes: &[(usize, u64)], reads: &[usize]) -> Result<(), PortConflict> {
        let mut written = HashSet::new();
        for (addr, _) in writes {
            if !written.insert(*addr) {
                return Err(PortConflict::WriteWrite(*addr));
            }
        }
        for addr in reads {
            if written.contains(addr) {
                return Err(PortConflict::ReadWrite(*addr));
            }
        }
        Ok(())
    }
}

/// Same-cycle port conflict on a multi-port memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortConflict {
    /// Two writes targeted the same word.
    WriteWrite(usize),
    /// A read and a write targeted the same word.
    ReadWrite(usize),
}

impl std::fmt::Display for PortConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortConflict::WriteWrite(a) => write!(f, "two writes to word {a} in one cycle"),
            PortConflict::ReadWrite(a) => write!(f, "read and write of word {a} in one cycle"),
        }
    }
}

impl std::error::Error for PortConflict {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_roundtrip() {
        let mut m = MultiPortMemory::new(8, 16, 1, 2);
        m.write(3, 0xABCD);
        assert_eq!(m.read(3), 0xABCD);
        assert_eq!(m.read(0), 0);
    }

    #[test]
    fn stuck_at_zero_masks_bit() {
        let mut m = MultiPortMemory::new(4, 8, 1, 1);
        m.inject(MemFault {
            word: 1,
            bit: 3,
            kind: MemFaultKind::StuckAt0,
        });
        m.write(1, 0xFF);
        assert_eq!(m.read(1), 0xF7);
    }

    #[test]
    fn transition_up_fault_blocks_rise() {
        let mut m = MultiPortMemory::new(4, 8, 1, 1);
        m.inject(MemFault {
            word: 2,
            bit: 0,
            kind: MemFaultKind::TransitionUp,
        });
        m.write(2, 0x00);
        m.write(2, 0x01); // rise blocked
        assert_eq!(m.read(2) & 1, 0);
        // But a cell already at 1 stays 1 (write 1 over 1 fine).
        m.clear_fault();
        m.write(2, 0x01);
        m.inject(MemFault {
            word: 2,
            bit: 0,
            kind: MemFaultKind::TransitionUp,
        });
        m.write(2, 0x01);
        assert_eq!(m.read(2) & 1, 1);
    }

    #[test]
    fn coupling_inversion_flips_victim() {
        let mut m = MultiPortMemory::new(4, 8, 1, 1);
        // Victim word 0 bit 2, aggressor word 3.
        m.inject(MemFault {
            word: 0,
            bit: 2,
            kind: MemFaultKind::CouplingInversion { aggressor: 3 },
        });
        m.write(0, 0x00);
        m.write(3, 0x04); // aggressor bit 2 rises -> victim flips
        assert_eq!(m.read(0) & 0x04, 0x04);
    }

    #[test]
    fn port_plan_conflicts_detected() {
        assert!(MultiPortMemory::check_port_plan(&[(1, 0), (1, 9)], &[]).is_err());
        assert!(MultiPortMemory::check_port_plan(&[(1, 0)], &[1]).is_err());
        assert!(MultiPortMemory::check_port_plan(&[(1, 0)], &[2]).is_ok());
    }
}
