//! LFSR / MISR response compaction.
//!
//! The paper deliberately avoids BIST hardware ("the idea behind our
//! approach is not to use any additional circuitry for the test, except
//! flip-flops (functional) with scan"), but its reference \[13\] costs a
//! datapath BIST scheme. This module provides the signature-analysis
//! machinery needed to *evaluate* that alternative: a Galois LFSR pattern
//! source and a multiple-input signature register (MISR) with the usual
//! aliasing-probability estimate, so the repository can compare
//! deterministic-pattern testing against a BIST-style option.

/// A Galois-configuration linear feedback shift register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    state: u64,
    taps: u64,
    width: u32,
}

impl Lfsr {
    /// Creates an LFSR with the given feedback `taps` (bit `i` set ⇒ tap
    /// on stage `i`) and nonzero `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0/>64 or the seed is zero (an all-zero LFSR
    /// never leaves the zero state).
    pub fn new(width: u32, taps: u64, seed: u64) -> Self {
        assert!((1..=64).contains(&width), "LFSR width out of range");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        };
        let seed = seed & mask;
        assert_ne!(seed, 0, "LFSR seed must be nonzero");
        Lfsr {
            state: seed,
            taps: taps & mask,
            width,
        }
    }

    /// A maximal-length 16-bit LFSR (x¹⁶+x¹⁴+x¹³+x¹¹+1, the classic
    /// Galois right-shift tap mask `0xB400`).
    pub fn standard16(seed: u64) -> Self {
        Lfsr::new(16, 0xB400, seed)
    }

    /// Advances one step and returns the new state.
    pub fn step(&mut self) -> u64 {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1 << self.width) - 1
        };
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb == 1 {
            self.state ^= self.taps;
        }
        self.state &= mask;
        self.state
    }

    /// Current state.
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl Iterator for Lfsr {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.step())
    }
}

/// A multiple-input signature register compacting word-wide responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    lfsr: Lfsr,
}

impl Misr {
    /// Creates a MISR of the given geometry (see [`Lfsr::new`]).
    pub fn new(width: u32, taps: u64, seed: u64) -> Self {
        Misr {
            lfsr: Lfsr::new(width, taps, seed),
        }
    }

    /// Absorbs one response word.
    pub fn absorb(&mut self, response: u64) {
        self.lfsr.step();
        let mask = if self.lfsr.width == 64 {
            u64::MAX
        } else {
            (1 << self.lfsr.width) - 1
        };
        self.lfsr.state = (self.lfsr.state ^ response) & mask;
        if self.lfsr.state == 0 {
            // Keep the register live: the all-zero state is absorbing for
            // the step function; real MISRs avoid it with an extra gate.
            self.lfsr.state = 1;
        }
    }

    /// The compacted signature.
    pub fn signature(&self) -> u64 {
        self.lfsr.state()
    }

    /// Classic aliasing-probability estimate `2^-width` for long response
    /// streams.
    pub fn aliasing_probability(&self) -> f64 {
        2f64.powi(-(self.lfsr.width as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximal_lfsr_has_full_period() {
        let mut lfsr = Lfsr::standard16(1);
        let mut count = 0u64;
        loop {
            lfsr.step();
            count += 1;
            if lfsr.state() == 1 {
                break;
            }
            assert!(count <= 1 << 16, "period overrun");
        }
        assert_eq!(count, (1 << 16) - 1, "maximal length = 2^16 - 1");
    }

    #[test]
    fn signatures_distinguish_single_bit_errors() {
        let responses: Vec<u64> = (0..200u64).map(|i| (i * 37) & 0xFFFF).collect();
        let mut clean = Misr::new(16, 0xB400, 0xACE1);
        for r in &responses {
            clean.absorb(*r);
        }
        // Flip one response bit anywhere: the signature must change.
        for k in [0usize, 17, 99, 199] {
            let mut bad = Misr::new(16, 0xB400, 0xACE1);
            for (i, r) in responses.iter().enumerate() {
                bad.absorb(if i == k { r ^ 0x0010 } else { *r });
            }
            assert_ne!(bad.signature(), clean.signature(), "error at {k} aliased");
        }
    }

    #[test]
    fn signature_is_deterministic() {
        let mut a = Misr::new(16, 0xB400, 1);
        let mut b = Misr::new(16, 0xB400, 1);
        for r in [1u64, 2, 3, 0xFFFF] {
            a.absorb(r);
            b.absorb(r);
        }
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn aliasing_estimate() {
        let m = Misr::new(16, 0xB400, 1);
        assert!((m.aliasing_probability() - 1.0 / 65536.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "seed must be nonzero")]
    fn zero_seed_rejected() {
        let _ = Lfsr::new(8, 0x8E, 0);
    }
}
