//! Bus interconnect fault model.
//!
//! "The test of the sockets also tests all interconnections inside the
//! datapath" — this module backs that claim with the classical wire fault
//! models for a move bus: stuck lines, bridges between adjacent lines
//! (wired-AND / wired-OR) and opens, plus a walking-pattern generator and
//! checker proving the socket-scan phase's bus patterns detect them all.

/// Fault on a `width`-bit bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusFault {
    /// Line stuck at 0.
    StuckAt0(usize),
    /// Line stuck at 1.
    StuckAt1(usize),
    /// Adjacent lines `i` and `i+1` shorted, resolving as wired-AND.
    BridgeAnd(usize),
    /// Adjacent lines `i` and `i+1` shorted, resolving as wired-OR.
    BridgeOr(usize),
    /// Line broken: the receiver sees a constant (modelled as 0).
    Open(usize),
}

impl BusFault {
    /// Applies the fault to a transmitted word, returning what the
    /// receiving socket sees.
    pub fn corrupt(self, word: u64) -> u64 {
        match self {
            BusFault::StuckAt0(i) | BusFault::Open(i) => word & !(1 << i),
            BusFault::StuckAt1(i) => word | 1 << i,
            BusFault::BridgeAnd(i) => {
                let a = word >> i & 1;
                let b = word >> (i + 1) & 1;
                let v = a & b;
                word & !(0b11 << i) | (v << i) | (v << (i + 1))
            }
            BusFault::BridgeOr(i) => {
                let a = word >> i & 1;
                let b = word >> (i + 1) & 1;
                let v = a | b;
                word & !(0b11 << i) | (v << i) | (v << (i + 1))
            }
        }
    }

    /// The full interconnect fault universe of a `width`-bit bus.
    pub fn universe(width: usize) -> Vec<BusFault> {
        let mut v = Vec::new();
        for i in 0..width {
            v.push(BusFault::StuckAt0(i));
            v.push(BusFault::StuckAt1(i));
            v.push(BusFault::Open(i));
            if i + 1 < width {
                v.push(BusFault::BridgeAnd(i));
                v.push(BusFault::BridgeOr(i));
            }
        }
        v
    }
}

/// The classic interconnect test set: walking-1, walking-0, plus the two
/// solid backgrounds — `2·width + 2` words.
pub fn walking_patterns(width: usize) -> Vec<u64> {
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    let mut v = Vec::with_capacity(2 * width + 2);
    v.push(0);
    v.push(mask);
    for i in 0..width {
        v.push(1 << i);
        v.push(mask & !(1 << i));
    }
    v
}

/// Checks whether `patterns` detect `fault` on a `width`-bit bus (some
/// transmitted word arrives corrupted).
pub fn detects(patterns: &[u64], fault: BusFault) -> bool {
    patterns.iter().any(|&p| fault.corrupt(p) != p)
}

/// Verifies a pattern set against the whole universe; returns the escaped
/// faults (empty = complete interconnect coverage).
pub fn escapes(patterns: &[u64], width: usize) -> Vec<BusFault> {
    BusFault::universe(width)
        .into_iter()
        .filter(|f| !detects(patterns, *f))
        .collect()
}

/// Cycles the interconnect phase adds per bus: one transport per walking
/// pattern.
pub fn interconnect_test_cycles(width: usize, buses: usize) -> usize {
    walking_patterns(width).len() * buses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walking_patterns_cover_the_universe() {
        for width in [4usize, 8, 16, 32] {
            let patterns = walking_patterns(width);
            assert_eq!(patterns.len(), 2 * width + 2);
            assert!(
                escapes(&patterns, width).is_empty(),
                "escapes at width {width}"
            );
        }
    }

    #[test]
    fn solid_backgrounds_alone_miss_bridges() {
        // 0000 and 1111 never put different values on adjacent lines.
        let solid = [0u64, 0xF];
        let escaped = escapes(&solid, 4);
        assert!(escaped
            .iter()
            .any(|f| matches!(f, BusFault::BridgeAnd(_) | BusFault::BridgeOr(_))));
    }

    #[test]
    fn bridge_semantics() {
        // Lines 0,1 shorted, word = 0b01.
        assert_eq!(BusFault::BridgeAnd(0).corrupt(0b01), 0b00);
        assert_eq!(BusFault::BridgeOr(0).corrupt(0b01), 0b11);
        // Agreeing lines are unaffected.
        assert_eq!(BusFault::BridgeAnd(0).corrupt(0b11), 0b11);
        assert_eq!(BusFault::BridgeOr(0).corrupt(0b00), 0b00);
    }

    #[test]
    fn cycle_accounting_scales_with_buses() {
        assert_eq!(interconnect_test_cycles(16, 1), 34);
        assert_eq!(interconnect_test_cycles(16, 2), 68);
    }
}
