//! Property-based tests: march algorithms vs the behavioural memory
//! fault model, and scan-chain integrity on arbitrary bit streams.

use proptest::prelude::*;
use tta_dft::march::MarchAlgorithm;
use tta_dft::memory::{MemFault, MemFaultKind, MultiPortMemory};
use tta_dft::scan::insert_scan;
use tta_netlist::components;
use tta_netlist::sim::OwnedSeqSim;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn march_cminus_detects_any_cell_fault(
        words in 2usize..16,
        word_sel in 0usize..16,
        bit in 0usize..8,
        kind_sel in 0usize..4,
    ) {
        let word = word_sel % words;
        let kind = [
            MemFaultKind::StuckAt0,
            MemFaultKind::StuckAt1,
            MemFaultKind::TransitionUp,
            MemFaultKind::TransitionDown,
        ][kind_sel];
        let fault = MemFault { word, bit, kind };
        prop_assert!(
            MarchAlgorithm::march_cminus().detects(words, 8, fault),
            "{fault:?} escaped on {words} words"
        );
    }

    #[test]
    fn march_b_detects_any_coupling_fault(
        words in 2usize..10,
        victim_sel in 0usize..10,
        aggr_sel in 0usize..10,
        bit in 0usize..4,
        forced in proptest::bool::ANY,
    ) {
        let victim = victim_sel % words;
        let aggressor = aggr_sel % words;
        prop_assume!(victim != aggressor);
        let fault = MemFault {
            word: victim,
            bit,
            kind: MemFaultKind::CouplingIdempotent { aggressor, forced_value: forced },
        };
        // Idempotent coupling: either March B or C- catches it (both do
        // for inter-word faults with solid backgrounds when the forced
        // value differs from the background at read time; C- reads both
        // backgrounds in both orders, so it is complete here).
        prop_assert!(
            MarchAlgorithm::march_cminus().detects(words, 4, fault),
            "{fault:?} escaped"
        );
    }

    #[test]
    fn fault_free_memory_always_passes(words in 1usize..32, width in 1usize..16) {
        for alg in [
            MarchAlgorithm::mats_plus(),
            MarchAlgorithm::march_cminus(),
            MarchAlgorithm::march_b(),
        ] {
            let mut mem = MultiPortMemory::new(words, width, 1, 1);
            prop_assert_eq!(alg.run(&mut mem), Ok(()), "{}", alg.name());
        }
    }

    #[test]
    fn scan_chain_shifts_arbitrary_streams(bits in proptest::collection::vec(proptest::bool::ANY, 1..40)) {
        // Load an arbitrary stream into the PC's scan chain and read the
        // state back: the last `nl` bits must sit in the flip-flops.
        let pc = components::pc(4);
        let scanned = insert_scan(&pc.netlist);
        let nl = scanned.chain_length();
        let mut sim = OwnedSeqSim::new(scanned.netlist().clone());
        for &bit in &bits {
            sim.step_words(&[("scan_en", 1), ("scan_in", u64::from(bit)), ("stall", 1)]);
        }
        // State: flip-flop k holds the bit shifted in (len-1-k) steps ago.
        let state: Vec<bool> = sim.state().iter().map(|w| w & 1 == 1).collect();
        for k in 0..nl.min(bits.len()) {
            let expect = bits[bits.len() - 1 - k];
            // Chain order: ff0 is closest to scan_in.
            prop_assert_eq!(state[k], expect, "ff{} of {}", k, nl);
        }
    }
}
