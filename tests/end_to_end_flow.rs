//! Integration: the complete paper flow at fast scale — sweep, Pareto,
//! test lifting, selection — with the paper's structural claims checked
//! end to end.

use ttadse::explore::explore::{ExploreConfig, Explorer};
use ttadse::explore::norm::{Norm, Weights};
use ttadse::explore::pareto::{dominates, pareto_front};
use ttadse::workloads::suite;

#[test]
fn full_flow_properties() {
    let mut explorer = Explorer::new(ExploreConfig::fast());
    let result = explorer.run(&suite::crypt(1));

    // Non-degenerate sweep.
    assert!(result.evaluated.len() >= 6);
    assert!(!result.pareto2d.is_empty());

    // Pareto front really is a front.
    let pts: Vec<Vec<f64>> = result
        .evaluated
        .iter()
        .map(|e| vec![e.area, e.exec_time])
        .collect();
    assert_eq!(pareto_front(&pts), result.pareto2d);

    // "only the architectures that correspond to the Pareto points … are
    // evaluated in terms of testing".
    for (i, e) in result.evaluated.iter().enumerate() {
        assert_eq!(e.test_cost.is_some(), result.pareto2d.contains(&i), "{i}");
    }

    // Figure 8 projection property.
    assert!(result.projection_holds());

    // The selected point is on the front and no point dominates it in 3-D.
    let best = result.select_equal_weights();
    let best3 = best.point3d();
    for e in result.pareto3d_points() {
        assert!(
            !dominates(&e.point3d(), &best3),
            "selection must not be 3-D dominated"
        );
    }
}

#[test]
fn selection_responds_to_weights() {
    let mut explorer = Explorer::new(ExploreConfig::fast());
    let result = explorer.run(&suite::crypt(1));
    // Area-heavy weights must never select a point with larger area than
    // the equal-weight choice.
    let equal = result.select_equal_weights();
    let area_heavy = result.select(&Weights(vec![100.0, 1.0, 1.0]), Norm::Euclidean);
    assert!(area_heavy.area <= equal.area);
    // Time-heavy weights must never select a slower point.
    let time_heavy = result.select(&Weights(vec![1.0, 100.0, 1.0]), Norm::Euclidean);
    assert!(time_heavy.exec_time <= equal.exec_time);
}

#[test]
fn test_cost_varies_along_the_front() {
    // Figure 8's message: architectures adjacent on the 2-D front can
    // differ in test cost; the axis must not be constant (unless the
    // front collapses to one point).
    let mut explorer = Explorer::new(ExploreConfig::fast());
    let result = explorer.run(&suite::crypt(1));
    let costs: Vec<f64> = result
        .pareto3d_points()
        .iter()
        .map(|e| e.test_cost.expect("front has test cost"))
        .collect();
    if costs.len() >= 2 {
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "test axis is flat: {costs:?}");
    }
}

#[test]
fn different_workloads_can_select_different_machines() {
    let mut explorer = Explorer::new(ExploreConfig::fast());
    let crypt = explorer.run(&suite::crypt(1));
    let checksum = explorer.run(&suite::checksum32());
    // Both select something valid; the fronts themselves may differ.
    assert!(crypt.select_equal_weights().test_cost.is_some());
    assert!(checksum.select_equal_weights().test_cost.is_some());
}
