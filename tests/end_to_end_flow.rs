//! Integration: the complete paper flow at fast scale — sweep, Pareto,
//! test lifting, selection — with the paper's structural claims checked
//! end to end through the `Exploration` builder.

use ttadse::arch::template::TemplateSpace;
use ttadse::explore::explore::{Exploration, Objective};
use ttadse::explore::norm::{Norm, Weights};
use ttadse::explore::pareto::{dominates, pareto_front};
use ttadse::explore::ComponentDb;
use ttadse::workloads::suite;

#[test]
fn full_flow_properties() {
    let result = Exploration::over(TemplateSpace::fast_default())
        .workload(&suite::crypt(1))
        .run();

    // Non-degenerate sweep.
    assert!(result.evaluated.len() >= 6);
    assert!(!result.pareto.is_empty());

    // Pareto front really is a front.
    let pts: Vec<Vec<f64>> = result
        .evaluated
        .iter()
        .map(|e| vec![e.area(), e.exec_time()])
        .collect();
    assert_eq!(pareto_front(&pts), result.pareto);

    // "only the architectures that correspond to the Pareto points … are
    // evaluated in terms of testing".
    for (i, e) in result.evaluated.iter().enumerate() {
        assert_eq!(e.test_cost().is_some(), result.is_on_front(i), "{i}");
        assert_eq!(
            e.objectives.axes().len(),
            if result.is_on_front(i) { 3 } else { 2 }
        );
    }
    assert_eq!(
        result.axes(),
        [Objective::Area, Objective::ExecTime, Objective::TestCost]
    );

    // Figure 8 projection property.
    assert!(result.projection_holds());

    // The selected point is on the front and no point dominates it in 3-D.
    let best = result.select_equal_weights();
    let best3 = best.objectives.values().to_vec();
    for v in result.pareto_vectors() {
        assert!(
            !dominates(v.values(), &best3),
            "selection must not be 3-D dominated"
        );
    }
}

#[test]
fn parallel_flow_matches_serial_end_to_end() {
    let w = suite::crypt(1);
    let db = ComponentDb::new();
    let serial = Exploration::over(TemplateSpace::fast_default())
        .workload(&w)
        .with_db(&db)
        .run();
    let parallel = Exploration::over(TemplateSpace::fast_default())
        .workload(&w)
        .with_db(&db)
        .parallel(true)
        .threads(7) // odd thread count to shake out ordering bugs
        .run();
    assert_eq!(serial.infeasible, parallel.infeasible);
    assert_eq!(serial.pareto, parallel.pareto);
    assert_eq!(serial.evaluated.len(), parallel.evaluated.len());
    for (a, b) in serial.evaluated.iter().zip(&parallel.evaluated) {
        assert_eq!(a.architecture.name, b.architecture.name);
        assert_eq!(a.objectives, b.objectives);
    }
    assert_eq!(
        serial.select_equal_weights().architecture.name,
        parallel.select_equal_weights().architecture.name
    );
}

/// The PR-1 acceptance criterion at full paper scale: the parallel sweep
/// over the 144-point space is bit-identical to the serial one. Takes
/// about a minute in release mode, so it is `#[ignore]`d by default —
/// run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "paper-scale run (~1 min in release); covered at fast scale above"]
fn paper_scale_parallel_matches_serial() {
    let w = suite::crypt(16);
    let db = ComponentDb::new();
    let serial = Exploration::over(TemplateSpace::paper_default())
        .workload(&w)
        .with_db(&db)
        .run();
    let parallel = Exploration::over(TemplateSpace::paper_default())
        .workload(&w)
        .with_db(&db)
        .parallel(true)
        .run();
    assert_eq!(serial.evaluated.len(), 144 - serial.infeasible);
    assert_eq!(serial.pareto, parallel.pareto);
    for (a, b) in serial.evaluated.iter().zip(&parallel.evaluated) {
        assert_eq!(a.architecture.name, b.architecture.name);
        assert_eq!(a.objectives, b.objectives);
    }
    assert_eq!(
        serial.select_equal_weights().architecture.name,
        parallel.select_equal_weights().architecture.name
    );
}

#[test]
fn selection_responds_to_weights() {
    let result = Exploration::over(TemplateSpace::fast_default())
        .workload(&suite::crypt(1))
        .run();
    // Area-heavy weights must never select a point with larger area than
    // the equal-weight choice.
    let equal = result.select_equal_weights();
    let area_heavy = result.select(&Weights(vec![100.0, 1.0, 1.0]), Norm::Euclidean);
    assert!(area_heavy.area() <= equal.area());
    // Time-heavy weights must never select a slower point.
    let time_heavy = result.select(&Weights(vec![1.0, 100.0, 1.0]), Norm::Euclidean);
    assert!(time_heavy.exec_time() <= equal.exec_time());
}

#[test]
fn test_cost_varies_along_the_front() {
    // Figure 8's message: architectures adjacent on the 2-D front can
    // differ in test cost; the axis must not be constant (unless the
    // front collapses to one point).
    let result = Exploration::over(TemplateSpace::fast_default())
        .workload(&suite::crypt(1))
        .run();
    let costs: Vec<f64> = result
        .pareto_points()
        .iter()
        .map(|e| e.test_cost().expect("front has test cost"))
        .collect();
    if costs.len() >= 2 {
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "test axis is flat: {costs:?}");
    }
}

#[test]
fn different_workloads_can_select_different_machines() {
    let db = ComponentDb::new();
    let crypt = Exploration::over(TemplateSpace::fast_default())
        .workload(&suite::crypt(1))
        .with_db(&db)
        .run();
    let checksum = Exploration::over(TemplateSpace::fast_default())
        .workload(&suite::checksum32())
        .with_db(&db)
        .run();
    // Both select something valid; the fronts themselves may differ.
    assert!(crypt.select_equal_weights().test_cost().is_some());
    assert!(checksum.select_equal_weights().test_cost().is_some());
}

#[test]
fn multi_workload_suite_explores_end_to_end() {
    let crypt = suite::crypt(1);
    let checksum = suite::checksum32();
    let result = Exploration::over(TemplateSpace::fast_default())
        .workloads([&crypt, &checksum])
        .parallel(true)
        .run();
    assert_eq!(result.workloads.len(), 2);
    assert!(!result.pareto.is_empty());
    let best = result.select_equal_weights();
    assert_eq!(best.workload_cycles.len(), 2);
    assert_eq!(best.cycles, best.workload_cycles.iter().sum::<u64>());
}
