//! Integration: every schedule the compiler produces — on any
//! architecture, for any workload — satisfies the paper's
//! transport-timing relations (2)–(8), and the CD floors of eqs. (9)–(10)
//! hold on the generated templates.

use ttadse::arch::template::{TemplateBuilder, TemplateSpace};
use ttadse::arch::{transport_cycles, validate_relations, Architecture, FuKind};
use ttadse::movec::schedule::Scheduler;
use ttadse::workloads::suite;

#[test]
fn all_workloads_on_figure9_respect_relations() {
    let arch = Architecture::figure9();
    for w in [suite::crypt(2), suite::bitcount(), suite::checksum32()] {
        let s = Scheduler::new(&arch)
            .run(&w.dfg)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        for (fu, ops) in s.transports_per_fu() {
            validate_relations(ops).unwrap_or_else(|v| panic!("{} fu{fu}: {v}", w.name));
        }
    }
}

#[test]
fn every_space_architecture_respects_relations_on_crypt() {
    let w = suite::crypt(1);
    for arch in TemplateSpace::tiny().enumerate() {
        let s = Scheduler::new(&arch)
            .run(&w.dfg)
            .expect("tiny space schedulable");
        for ops in s.transports_per_fu().values() {
            assert_eq!(validate_relations(ops), Ok(()), "{}", arch.name);
        }
    }
}

#[test]
fn cd_floor_eq9_and_eq10_across_bus_counts() {
    // 3+ buses: every ALU port on its own bus -> CD = 3 (eq. 9).
    // 1 bus: all ports share -> CD = 5 (eq. 10 and beyond).
    for (buses, expect) in [(3usize, 3u32), (2, 4), (1, 5)] {
        let arch = TemplateBuilder::new(format!("b{buses}"), 16, buses)
            .fu(FuKind::Alu)
            .fu(FuKind::LdSt)
            .fu(FuKind::Pc)
            .rf(8, 1, 1)
            .build();
        let alu = arch.fus().iter().find(|f| f.kind == FuKind::Alu).unwrap();
        assert_eq!(transport_cycles(alu), expect, "{buses} buses");
    }
}

#[test]
fn schedule_cycle_counts_scale_down_with_resources() {
    // The Figure 2 mechanism: richer machines are never slower.
    let w = suite::crypt(2);
    let lean = TemplateBuilder::new("lean", 16, 1)
        .fu(FuKind::Alu)
        .fu(FuKind::Immediate)
        .fu(FuKind::LdSt)
        .fu(FuKind::Pc)
        .rf(8, 1, 1)
        .build();
    let rich = TemplateBuilder::new("rich", 16, 4)
        .fu(FuKind::Alu)
        .fu(FuKind::Alu)
        .fu(FuKind::Alu)
        .fu(FuKind::Immediate)
        .fu(FuKind::Immediate)
        .fu(FuKind::LdSt)
        .fu(FuKind::Pc)
        .rf(16, 2, 2)
        .rf(16, 2, 2)
        .build();
    let s_lean = Scheduler::new(&lean).run(&w.dfg).unwrap();
    let s_rich = Scheduler::new(&rich).run(&w.dfg).unwrap();
    assert!(
        s_rich.cycles < s_lean.cycles,
        "rich {} !< lean {}",
        s_rich.cycles,
        s_lean.cycles
    );
}
