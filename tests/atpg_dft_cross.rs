//! Integration across the test-generation stack: ATPG patterns survive
//! scan insertion, the RF netlist behaves like the march-test memory
//! model, and the full-scan/functional cost relation of Table 1 holds.

use ttadse::atpg::{Atpg, AtpgConfig, FaultSimulator};
use ttadse::dft::march::MarchAlgorithm;
use ttadse::dft::memory::MultiPortMemory;
use ttadse::dft::scan::insert_scan;
use ttadse::netlist::components;
use ttadse::netlist::sim::OwnedSeqSim;

#[test]
fn scan_insertion_preserves_atpg_coverage() {
    // The scanned design contains the original logic plus scan muxes;
    // ATPG on it must still reach full coverage of testable faults.
    let cmp = components::cmp(8);
    let scanned = insert_scan(&cmp.netlist);
    let engine = Atpg::new(AtpgConfig::default());
    let plain = engine.run(&cmp.netlist);
    let with_scan = engine.run(scanned.netlist());
    assert!(plain.adjusted_coverage() > 0.99);
    assert!(with_scan.adjusted_coverage() > 0.99);
    // Scan muxes add logic, so the scanned universe is bigger.
    assert!(with_scan.faults.len() > plain.faults.len());
}

#[test]
fn rf_netlist_agrees_with_behavioural_memory_model() {
    // Drive the same write/read sequence into the gate-level register
    // file and the behavioural multi-port memory the march tests use.
    let width = 8;
    let regs = 8;
    let rf = components::register_file(width, regs, 1, 1);
    let mut sim = OwnedSeqSim::new(rf.netlist.clone());
    let mut model = MultiPortMemory::new(regs, width, 1, 1);

    let mut lcg = 12345u64;
    let mut next = || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lcg >> 33
    };
    for _ in 0..40 {
        let addr = next() % regs as u64;
        let data = next() & 0xFF;
        // Netlist write: strobe, then commit cycle.
        sim.step_words(&[("wdata0", data), ("waddr0", addr), ("wen0", 1)]);
        sim.step_words(&[]);
        model.write(addr as usize, data);
        // Read back through the pipelined read port.
        let raddr = next() % regs as u64;
        sim.step_words(&[("raddr0", raddr), ("ren0", 1)]);
        sim.step_words(&[]);
        sim.step_words(&[]);
        let got = sim.output_words()["rdata0"];
        assert_eq!(got, model.read(raddr as usize), "read {raddr}");
    }
}

#[test]
fn march_cminus_is_the_coverage_floor_for_rf_storage() {
    // Every stuck-at fault the behavioural model can express is caught.
    let alg = MarchAlgorithm::march_cminus();
    for words in [8usize, 12] {
        for word in 0..words {
            for kind in [
                ttadse::dft::memory::MemFaultKind::StuckAt0,
                ttadse::dft::memory::MemFaultKind::StuckAt1,
            ] {
                let fault = ttadse::dft::memory::MemFault { word, bit: 0, kind };
                assert!(alg.detects(words, 16, fault), "{fault:?}");
            }
        }
    }
}

#[test]
fn functional_patterns_beat_full_scan_cycles_for_every_datapath_unit() {
    // Table 1's core claim, checked component by component at 8 bits.
    use ttadse::dft::testtime::full_scan_cycles;
    let engine = Atpg::new(AtpgConfig::default());
    for (name, comp) in [
        ("alu", components::alu(8)),
        ("cmp", components::cmp(8)),
        ("mul", components::mul(8)),
    ] {
        let result = engine.run(&comp.netlist);
        let np = result.pattern_count();
        let nl = comp.netlist.dff_count();
        let scan = full_scan_cycles(np, nl);
        let functional = np * 5; // worst-case CD (all ports on one bus)
        assert!(
            scan > functional,
            "{name}: scan {scan} vs functional {functional}"
        );
    }
}

#[test]
fn atpg_patterns_detect_on_independent_simulator_instance() {
    let alu = components::alu(8);
    let result = Atpg::new(AtpgConfig::default()).run(&alu.netlist);
    let mut fs = FaultSimulator::new(alu.netlist.clone());
    let (detected, _) = fs.run_with_dropping(result.test_set.patterns(), &result.faults);
    let n_det = detected.iter().filter(|d| **d).count();
    let (claimed, _, _) = result.status_counts();
    assert_eq!(n_det, claimed, "claimed detections must reproduce");
}
