//! Integration: the scheduled Crypt workload computes exactly what the
//! reference crypt(3)/DES implementation computes — the IR lowering, the
//! golden model and the DES test vectors all agree.

use ttadse::workloads::des;
use ttadse::workloads::lower::{self, split_half};

#[test]
fn lowered_kernel_matches_reference_over_random_states() {
    // Deterministic LCG so the test needs no RNG dependency here.
    let mut state = 0x2545F491_4F6CDD1Du64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let dfg = lower::lower_crypt_rounds(16);
    for _ in 0..10 {
        let key = next();
        let l = next() as u32;
        let r = next() as u32;
        let keys = des::key_schedule(key);
        let expect = des::rounds16_spe(l, r, &keys);
        let (lh, ll) = split_half(l);
        let (rh, rl) = split_half(r);
        let mut mem = lower::crypt_mem_image(key);
        let out = dfg.eval(&[lh, ll, rh, rl], &mut mem);
        let got = (
            ((out[0] as u32) << 16) | out[1] as u32,
            ((out[2] as u32) << 16) | out[3] as u32,
        );
        assert_eq!(got, expect, "key {key:016x}");
    }
}

#[test]
fn crypt_core_equals_25_chained_des_calls() {
    let key = ttadse::workloads::crypt::password_key("explorer");
    let mut block = 0u64;
    for _ in 0..25 {
        block = des::encrypt_block(key, block);
    }
    assert_eq!(ttadse::workloads::crypt::crypt_core(key, 0), block);
}

#[test]
fn des_vectors_still_hold_through_the_public_api() {
    assert_eq!(
        des::encrypt_block(0x1334_5779_9BBC_DFF1, 0x0123_4567_89AB_CDEF),
        0x85E8_1354_0F0A_B405
    );
    assert_eq!(des::encrypt_block(0, 0), 0x8CA6_4DE9_C1B1_23A7);
}

#[test]
fn trace_iterations_account_for_partial_lowerings() {
    use ttadse::workloads::suite;
    // A 4-round trace must claim 4x the iterations of a 16-round trace.
    let w16 = suite::crypt(16);
    let w4 = suite::crypt(4);
    assert_eq!(w4.trace_iterations, 4 * w16.trace_iterations);
}
