//! Named weighted suites moving the selected architecture: the same
//! template space, swept once per suite, selects *different* machines —
//! the paper's crypt workload picks a lean MUL-less TTA while the
//! DSP-weighted suite (FFT butterfly + FIR + DCT) pays for a
//! multiplier, and the control suite (add-compare-select + GCD) leans
//! on buses instead.
//!
//! Run with: `cargo run --release --example workload_suites`

use ttadse::arch::template::TemplateSpace;
use ttadse::explore::explore::Exploration;
use ttadse::explore::ComponentDb;
use ttadse::workloads::suite::{SuiteParams, SuiteRegistry};

fn main() {
    let registry = SuiteRegistry::standard();
    let params = SuiteParams::fast();
    let db = ComponentDb::new();
    let space = TemplateSpace::fast_default();
    println!(
        "sweeping {} template points per suite (fast scale)\n",
        space.len()
    );

    let mut selections = Vec::new();
    for name in ["paper", "dsp", "control"] {
        let members = registry.instantiate(name, &params).expect("standard suite");
        let labels: Vec<String> = members
            .iter()
            .map(|m| format!("{}:{}", m.workload.name, m.weight))
            .collect();
        let result = Exploration::over(space.clone())
            .suite(&members)
            .with_db(&db)
            .parallel(true)
            .run();
        let best = result.select_equal_weights();
        println!(
            "suite {name:<8} [{}]\n  -> {} (area {:.0} GE, exec {:.0}, test {:.0})",
            labels.join(" "),
            best.architecture.name,
            best.area(),
            best.exec_time(),
            best.test_cost().unwrap_or(f64::NAN),
        );
        for b in result.workload_breakdown() {
            println!(
                "     {:<14} weight {:<4} blocked {:<3} cycles {}",
                b.name,
                b.weight,
                b.blocked,
                b.selected_cycles.map_or("-".into(), |c| c.to_string()),
            );
        }
        selections.push((name, best.architecture.clone()));
    }

    // The acceptance property: paper and dsp land on different optima,
    // and the dsp machine carries the multiplier it pays for.
    let paper = &selections[0].1;
    let dsp = &selections[1].1;
    assert_ne!(
        paper.name, dsp.name,
        "the DSP-weighted suite must move the selection"
    );
    assert!(
        dsp.fus.iter().any(|f| f.name.starts_with("mul")),
        "the DSP selection must carry a multiplier"
    );
    assert!(
        !paper.fus.iter().any(|f| f.name.starts_with("mul")),
        "crypt alone should not pay for a multiplier"
    );
    println!(
        "\npaper vs dsp: selection moved ({} -> {})",
        paper.name, dsp.name
    );
}
