//! The persistent sweep cache: run the same exploration twice and watch
//! the second run answer every point from disk, bit-identically.
//!
//! Run with: `cargo run --release --example cached_sweep`

use ttadse::arch::template::TemplateSpace;
use ttadse::explore::cache::SweepCache;
use ttadse::explore::explore::Exploration;
use ttadse::workloads::suite;

fn main() {
    let dir = std::env::temp_dir().join("ttadse-example-cache");
    let cache = SweepCache::open(&dir).expect("temp dir is writable");
    let workload = suite::crypt(1);

    let run = || {
        Exploration::over(TemplateSpace::fast_default())
            .workload(&workload)
            .cache(&cache)
            .parallel(true)
            .run()
    };

    let cold = run();
    println!(
        "cold run: {} points evaluated, {} hits / {} misses",
        cold.evaluated.len(),
        cache.hits(),
        cache.misses()
    );

    let (h0, m0) = (cache.hits(), cache.misses());
    let warm = run();
    println!(
        "warm run: {} points evaluated, {} hits / {} misses (this run only)",
        warm.evaluated.len(),
        cache.hits() - h0,
        cache.misses() - m0
    );

    // Warm results are bit-identical to cold ones.
    assert_eq!(cold.pareto, warm.pareto);
    for (c, w) in cold.evaluated.iter().zip(&warm.evaluated) {
        assert_eq!(c.objectives, w.objectives, "{}", c.architecture.name);
    }
    println!(
        "bit-identical fronts; cache file: {}",
        cache.path().display()
    );

    // The same entries serve any sweep that visits the same points —
    // e.g. the `ttadse` CLI:
    println!("try: ttadse fig2 --fast --cache-dir {}", dir.display());
}
