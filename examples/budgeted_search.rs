//! Budgeted, seeded search strategies: sweep a space without visiting
//! every point, and watch the guided climber track the exhaustive
//! front on a fraction of the evaluations.
//!
//! Run with: `cargo run --release --example budgeted_search`

use ttadse::arch::template::TemplateSpace;
use ttadse::explore::explore::Exploration;
use ttadse::explore::search::{HillClimb, RandomSample};
use ttadse::explore::ComponentDb;
use ttadse::workloads::suite;

fn main() {
    let workload = suite::crypt(1);
    let db = ComponentDb::new();
    let space = TemplateSpace::fast_default();

    // The oracle: the classic exhaustive sweep.
    let full = Exploration::over(space.clone())
        .workload(&workload)
        .with_db(&db)
        .parallel(true)
        .run();
    println!(
        "exhaustive: {} points visited, {} on the front",
        full.search.evaluations,
        full.pareto.len()
    );

    // Half the budget, uniformly sampled. Deterministic per seed: run
    // this example twice and the numbers do not move.
    let budget = space.len() / 2;
    let sampled = Exploration::over(space.clone())
        .workload(&workload)
        .with_db(&db)
        .strategy(RandomSample)
        .budget(budget)
        .seed(42)
        .run();
    println!(
        "random (budget {budget}, seed 42): {} visited, {} on its front",
        sampled.search.evaluations,
        sampled.pareto.len()
    );

    // The guided climber mutates template knobs of front members.
    let climbed = Exploration::over(space)
        .workload(&workload)
        .with_db(&db)
        .strategy(HillClimb::with_batch(4))
        .budget(budget)
        .seed(42)
        .run();
    println!(
        "hillclimb (budget {budget}, seed 42): {} visited in {} rounds, {} on its front",
        climbed.search.evaluations,
        climbed.search.rounds,
        climbed.pareto.len()
    );

    // A sampled front is valid for the points it saw — every member is
    // non-dominated — but only the exhaustive front is authoritative
    // for the whole space.
    let best = full.select_equal_weights();
    println!("exhaustive selection: {}", best.architecture);
    if let Some(pick) = climbed.try_select(
        &ttadse::explore::Weights::equal(climbed.axes().len()),
        ttadse::explore::Norm::Euclidean,
    ) {
        println!("hillclimb selection:  {}", pick.architecture);
    }
}
