//! Assemble → run → trace → compare-to-model, on the FFT butterfly
//! kernel: the full cycle-accurate simulator loop in one example.
//!
//! The scheduler's cycle count is an *analytic* model; this example
//! shows the loop that keeps it honest — lower the schedule to an
//! executable move program, round-trip it through the assembler, run
//! it cycle by cycle, and check both the cycle count and the outputs
//! against the golden dataflow model.
//!
//! Run with: `cargo run --example simulate`

use ttadse::arch::template::TemplateSpace;
use ttadse::asm::{assemble, disassemble};
use ttadse::movec::schedule::Scheduler;
use ttadse::sim::{lower, SimOptions, Simulator};
use ttadse::workloads::suite::{SuiteParams, SuiteRegistry};

fn main() {
    // 1. The workload: the FFT butterfly stage from the standard
    //    registry, and a machine with a multiplier to run it on (the
    //    maximal point of the fast template space).
    let registry = SuiteRegistry::standard();
    let w = registry
        .build("fft", &SuiteParams::fast())
        .expect("fft is a registered workload");
    let space = TemplateSpace::fast_default();
    let arch = space.point(space.len() - 1);
    println!("workload {} on {}", w.name, arch.name);

    // 2. The analytic model: the list scheduler's cycle count.
    let schedule = Scheduler::new(&arch)
        .run(&w.dfg)
        .expect("the maximal point schedules every kernel");
    println!(
        "model: {} cycles, {} moves, {} spills",
        schedule.cycles,
        schedule.moves.len(),
        schedule.spills
    );

    // 3. Lower the schedule to an executable move program and take it
    //    through the assembler: text → program is exact (and the
    //    canonical text is a byte-stable fixed point).
    let program = lower(&arch, &w.dfg, &schedule, &w.inputs, &w.mem).expect("schedules lower");
    let text = disassemble(&program);
    let reassembled = assemble(&text).expect("canonical text assembles");
    assert_eq!(reassembled, program, "assembler round-trip is exact");
    println!(
        "\nprogram head ({} instructions):",
        program.instructions.len()
    );
    for line in text.lines().take(8) {
        println!("  {line}");
    }
    println!("  ...");

    // 4. Execute it cycle by cycle. Lowered programs opt into the
    //    spill convention (registers beyond the hardware file).
    let options = SimOptions {
        allow_register_overflow: true,
        ..Default::default()
    };
    let trace = Simulator::new(&arch)
        .options(options)
        .run(&reassembled)
        .expect("lowered programs execute");
    println!("\ntrace head:");
    for step in trace.steps.iter().take(4) {
        let moves = step
            .moves
            .iter()
            .map(|m| format!("{} -> {} = {}", m.src, m.dst, m.value))
            .collect::<Vec<_>>()
            .join("; ");
        println!(
            "  cycle {:>3} [instr {:>3}]  {moves}",
            step.cycle, step.instr
        );
    }
    println!("  ...");

    // 5. The validation the whole subsystem exists for: executed ==
    //    modeled, and the outputs match the golden dataflow model.
    let golden = {
        let mut mem = w.mem.clone();
        w.dfg.eval(&w.inputs, &mut mem)
    };
    println!(
        "\nexecuted cycles: {} (model: {})",
        trace.cycles, schedule.cycles
    );
    println!("outputs:  {:?}", trace.outputs);
    println!("golden:   {golden:?}");
    assert_eq!(
        trace.cycles,
        u64::from(schedule.cycles),
        "cycle model drifted"
    );
    assert_eq!(trace.outputs, golden, "executed outputs diverged");
    println!("\nsimulation reproduces the analytic model exactly");
}
