//! ATPG walk-through on one datapath component: fault universe,
//! collapsing, pattern generation, coverage — then the full-scan
//! comparison that motivates the whole paper.
//!
//! Run with: `cargo run --release --example atpg_demo`

use ttadse::atpg::{Atpg, AtpgConfig, FaultSimulator};
use ttadse::dft::scan::insert_scan;
use ttadse::dft::testtime::full_scan_cycles;
use ttadse::netlist::components;

fn main() {
    let alu = components::alu(16);
    println!(
        "component: {} — {} gates, {} flip-flops, {:.0} GE",
        alu.netlist.name(),
        alu.netlist.gate_count(),
        alu.netlist.dff_count(),
        alu.area()
    );

    // Run the engine.
    let result = Atpg::new(AtpgConfig::default()).run(&alu.netlist);
    let (detected, untestable, aborted) = result.status_counts();
    println!(
        "faults: {} collapsed (from {}), {detected} detected, {untestable} redundant, {aborted} aborted",
        result.faults.len(),
        result.uncollapsed_faults
    );
    println!(
        "patterns: {} ({} random-phase, {} deterministic before compaction)",
        result.pattern_count(),
        result.random_phase_patterns,
        result.deterministic_patterns
    );
    println!(
        "coverage: {:.2}% raw, {:.2}% of testable faults",
        result.fault_coverage() * 100.0,
        result.adjusted_coverage() * 100.0
    );

    // Independent verification: re-simulate the final set from scratch.
    let mut fs = FaultSimulator::new(alu.netlist.clone());
    let (redetected, _) = fs.run_with_dropping(result.test_set.patterns(), &result.faults);
    let confirmed = redetected.iter().filter(|d| **d).count();
    println!("independent fault simulation confirms {confirmed} detections");

    // The full-scan alternative: same patterns, but shifted bit-by-bit
    // through a chain of every flip-flop.
    let scanned = insert_scan(&alu.netlist);
    let nl = scanned.chain_length();
    let scan_cycles = full_scan_cycles(result.pattern_count(), nl);
    let functional_cycles = result.pattern_count() * 4; // CD = 4 on 2 buses
    println!("\n-- test application time --");
    println!(
        "full scan     : {scan_cycles} cycles (chain of {nl} FFs, {:.1} GE overhead)",
        scanned.area_overhead()
    );
    println!("our approach  : {functional_cycles} cycles (functional, over the move buses)");
    println!(
        "advantage     : {:.1}x fewer cycles",
        scan_cycles as f64 / functional_cycles as f64
    );
}
