//! Bring your own workload: define a dataflow kernel, verify it against
//! plain Rust, then explore which TTA suits it — including the test
//! axis. Shows a multi-workload sweep (the MUL-hungry kernel plus the
//! crypt trace) selecting a machine that serves both.
//!
//! Run with: `cargo run --release --example custom_workload`

use ttadse::arch::template::TemplateSpace;
use ttadse::explore::explore::Exploration;
use ttadse::movec::ir::{Dfg, Op};
use ttadse::workloads::{suite, Workload};

/// A small polynomial evaluator: y = c3·x³ + c2·x² + c1·x + c0 (Horner).
fn horner_dfg(coeffs: [u64; 4]) -> Dfg {
    let mut dfg = Dfg::new(16);
    let x = dfg.input();
    let mut acc = dfg.constant(coeffs[3]);
    for &c in coeffs[..3].iter().rev() {
        let t = dfg.op(Op::Mul, &[acc, x]);
        let cc = dfg.constant(c);
        acc = dfg.op(Op::Add, &[t, cc]);
    }
    dfg.mark_output(acc);
    dfg
}

fn main() {
    let coeffs = [7u64, 3, 0, 2]; // 2x^3 + 0x^2 + 3x + 7
    let dfg = horner_dfg(coeffs);

    // Golden check against plain Rust (wrapping 16-bit).
    let x = 5u64;
    let expect = (2 * x * x * x + 3 * x + 7) & 0xFFFF;
    let got = dfg.eval(&[x], &mut [0]);
    assert_eq!(got[0], expect);
    println!("horner(5) = {} ✓ (matches Rust)", got[0]);

    // Explore: this kernel *requires* a multiplier, so MUL-less
    // architectures drop out as infeasible.
    let mut space = TemplateSpace::fast_default();
    space.muls = vec![0, 1];
    let horner = Workload {
        name: "horner3".into(),
        dfg,
        inputs: vec![x],
        mem: vec![0],
        trace_iterations: 1024,
    };
    let result = Exploration::over(space.clone())
        .workload(&horner)
        .parallel(true)
        .run();
    println!(
        "{} feasible, {} infeasible (no multiplier)",
        result.evaluated.len(),
        result.infeasible
    );
    let best = result.select_equal_weights();
    println!("selected architecture:\n{}", best.architecture);
    assert!(
        best.architecture
            .fus
            .iter()
            .any(|f| f.name.starts_with("mul")),
        "a MUL-hungry workload must select a machine with a multiplier"
    );
    println!(
        "area {:.0} GE, {} cycles, test cost {:.0}",
        best.area(),
        best.cycles,
        best.test_cost().unwrap_or(f64::NAN)
    );

    // Multi-workload sweep: aggregate cycles over horner + crypt. The
    // selected machine must still carry the multiplier (horner is in the
    // suite), and the cycle count now covers both applications.
    let crypt = suite::crypt(1);
    let multi = Exploration::over(space)
        .workloads([&horner, &crypt])
        .parallel(true)
        .run();
    let best_multi = multi.select_equal_weights();
    println!(
        "\nmulti-workload ({} + {}): selected {} ({} total cycles)",
        horner.name, crypt.name, best_multi.architecture.name, best_multi.cycles
    );
    assert!(best_multi
        .architecture
        .fus
        .iter()
        .any(|f| f.name.starts_with("mul")));
    assert_eq!(best_multi.workload_cycles.len(), 2);
}
