//! Bring your own workload: define a dataflow kernel, verify it against
//! plain Rust, then explore which TTA suits it — including the test
//! axis. Shows that a MUL-hungry kernel selects differently from Crypt.
//!
//! Run with: `cargo run --release --example custom_workload`

use ttadse::explore::explore::{ExploreConfig, Explorer};
use ttadse::movec::ir::{Dfg, Op};
use ttadse::workloads::Workload;

/// A small polynomial evaluator: y = c3·x³ + c2·x² + c1·x + c0 (Horner).
fn horner_dfg(coeffs: [u64; 4]) -> Dfg {
    let mut dfg = Dfg::new(16);
    let x = dfg.input();
    let mut acc = dfg.constant(coeffs[3]);
    for &c in coeffs[..3].iter().rev() {
        let t = dfg.op(Op::Mul, &[acc, x]);
        let cc = dfg.constant(c);
        acc = dfg.op(Op::Add, &[t, cc]);
    }
    dfg.mark_output(acc);
    dfg
}

fn main() {
    let coeffs = [7u64, 3, 0, 2]; // 2x^3 + 0x^2 + 3x + 7
    let dfg = horner_dfg(coeffs);

    // Golden check against plain Rust (wrapping 16-bit).
    let x = 5u64;
    let expect = (2 * x * x * x + 3 * x + 7) & 0xFFFF;
    let got = dfg.eval(&[x], &mut vec![0]);
    assert_eq!(got[0], expect);
    println!("horner(5) = {} ✓ (matches Rust)", got[0]);

    // Explore: this kernel *requires* a multiplier, so MUL-less
    // architectures drop out as infeasible.
    let mut space = ExploreConfig::fast().space;
    space.muls = vec![0, 1];
    let workload = Workload {
        name: "horner3".into(),
        dfg,
        inputs: vec![x],
        mem: vec![0],
        trace_iterations: 1024,
    };
    let mut explorer = Explorer::new(ExploreConfig { space });
    let result = explorer.run(&workload);
    println!(
        "{} feasible, {} infeasible (no multiplier)",
        result.evaluated.len(),
        result.infeasible
    );
    let best = result.select_equal_weights();
    println!("selected architecture:\n{}", best.architecture);
    assert!(
        best.architecture.fus.iter().any(|f| f.name.starts_with("mul")),
        "a MUL-hungry workload must select a machine with a multiplier"
    );
    println!(
        "area {:.0} GE, {} cycles, test cost {:.0}",
        best.area,
        best.cycles,
        best.test_cost.unwrap_or(f64::NAN)
    );
}
