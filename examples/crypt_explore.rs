//! The complete paper flow on the Crypt application: design-space sweep,
//! 2-D Pareto front (Figure 2), test-cost lifting (Figure 8) and
//! equal-weight Euclidean selection (Figure 9) — through the
//! `Exploration` builder with a parallel sweep.
//!
//! Run with: `cargo run --release --example crypt_explore` (add `--fast`
//! for the reduced 8-bit space).

use ttadse::arch::template::TemplateSpace;
use ttadse::explore::explore::Exploration;
use ttadse::explore::norm::{Norm, Weights};
use ttadse::workloads::suite;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (space, rounds) = if fast {
        (TemplateSpace::fast_default(), 1)
    } else {
        (TemplateSpace::paper_default(), 16)
    };
    let workload = suite::crypt(rounds);
    println!(
        "exploring {} architectures for {} …",
        space.len(),
        workload.name
    );

    let result = Exploration::over(space)
        .workload(&workload)
        .parallel(true)
        .run();
    println!(
        "{} feasible points, {} infeasible, {} on the Pareto front\n",
        result.evaluated.len(),
        result.infeasible,
        result.pareto.len()
    );

    println!("-- Figure 2: area/time Pareto front --");
    let mut front = result.pareto_points();
    front.sort_by(|a, b| a.area().total_cmp(&b.area()));
    for e in &front {
        println!(
            "  area {:>8.0} GE   time {:>12.0}   test {:>8.0}   {}",
            e.area(),
            e.exec_time(),
            e.test_cost().unwrap_or(f64::NAN),
            e.architecture.name
        );
    }
    assert!(result.projection_holds(), "Figure 8 projection property");

    println!("\n-- Figure 9: equal-weight Euclidean selection --");
    let best = result.select_equal_weights();
    println!("{}", best.architecture);
    println!(
        "area {:.0} GE, {} cycles, test cost {:.0} cycles",
        best.area(),
        best.cycles,
        best.test_cost().unwrap_or(f64::NAN)
    );

    println!("\n-- selection sensitivity --");
    for (label, w, n) in [
        ("Manhattan", Weights::equal(3), Norm::Manhattan),
        ("Chebyshev", Weights::equal(3), Norm::Chebyshev),
        ("test-heavy", Weights(vec![1.0, 1.0, 4.0]), Norm::Euclidean),
        ("area-heavy", Weights(vec![4.0, 1.0, 1.0]), Norm::Euclidean),
        ("time-heavy", Weights(vec![1.0, 4.0, 1.0]), Norm::Euclidean),
    ] {
        let pick = result.select(&w, n);
        println!("  {label:<11} -> {}", pick.architecture.name);
    }
}
