//! Test-space co-exploration: what does the paper's Pareto-only lift
//! miss?
//!
//! The paper evaluates test cost only on the (area, time) Pareto
//! points. `LiftMode::Full` instead sweeps the test axis as a third
//! objective. This example runs both modes over the fast space for two
//! suites and both test models, verifies the structural contracts, and
//! prints the trade-offs the post-hoc lift cannot see.
//!
//! Run with: `cargo run --release --example full_lift`

use std::collections::HashSet;

use tta_arch::template::TemplateSpace;
use tta_core::explore::{Exploration, LiftMode};
use tta_core::models::ScanTestCostModel;
use tta_core::ComponentDb;
use tta_workloads::suite::{SuiteParams, SuiteRegistry};

fn main() {
    let db = ComponentDb::new();
    let registry = SuiteRegistry::standard();
    let params = SuiteParams::fast();
    let mut any_missed = false;

    for suite_name in ["paper", "control"] {
        let members = registry
            .instantiate(suite_name, &params)
            .expect("standard suite");
        for scan in [false, true] {
            let model = if scan { "scan" } else { "eq14" };
            let mut e = Exploration::over(TemplateSpace::fast_default())
                .suite(&members)
                .with_db(&db)
                .lift(LiftMode::Full)
                .parallel(true);
            if scan {
                e = e.test_cost_model(ScanTestCostModel::new());
            }
            let full = e.run();

            // Contract: every point carries the test axis, and the 3-D
            // front contains the whole 2-D design front.
            assert!(full.evaluated.iter().all(|e| e.test_cost().is_some()));
            let design: HashSet<usize> = full.design_front().into_iter().collect();
            assert!(design.iter().all(|i| full.pareto.contains(i)));

            let missed: Vec<usize> = full
                .pareto
                .iter()
                .copied()
                .filter(|i| !design.contains(i))
                .collect();
            println!(
                "suite {suite_name:7} · test model {model}: design front {} → true 3-D front {} ({} missed by the Pareto-only lift)",
                design.len(),
                full.pareto.len(),
                missed.len()
            );
            for &i in &missed {
                let e = &full.evaluated[i];
                println!(
                    "    missed: {:24} area {:7.0} GE  exec {:9.0}  test {:7.0} cycles",
                    e.architecture.name,
                    e.area(),
                    e.exec_time(),
                    e.test_cost().unwrap()
                );
                any_missed = true;
            }
        }
    }

    // The fast space demonstrably holds trade-offs the paper's
    // post-hoc lift misses (the bench tests pin down which).
    assert!(
        any_missed,
        "expected at least one configuration to surface a missed front point"
    );
    println!("\nthe Pareto-only lift is not lossless: the test axis earns its place in the sweep");
}
