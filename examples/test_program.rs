//! The ordered test programme of Section 3.2 and the emitted MOVE
//! parallel code: interconnect (socket scan) first, then functional
//! patterns over the verified buses — plus what the compiler's move code
//! actually looks like.
//!
//! Run with: `cargo run --release --example test_program`

use ttadse::arch::Architecture;
use ttadse::explore::backannotate::ComponentDb;
use ttadse::explore::testplan::TestPlan;
use ttadse::movec::codegen::{render_move_code, slot_occupancy};
use ttadse::movec::schedule::Scheduler;
use ttadse::workloads::suite;

fn main() {
    let arch = Architecture::figure9();

    // --- the test programme -------------------------------------------
    let db = ComponentDb::new();
    let plan = TestPlan::for_architecture(&arch, &db);
    assert!(plan.interconnect_first(), "scan precedes functional");
    println!("{plan}");

    // --- the mission-mode move code ------------------------------------
    let w = suite::crypt(1);
    let schedule = Scheduler::new(&arch).run(&w.dfg).expect("schedulable");
    let (used, total) = slot_occupancy(&arch, &schedule);
    println!(
        "crypt round trace: {} cycles, {}/{} move slots used ({:.0}%)",
        schedule.cycles,
        used,
        total,
        100.0 * used as f64 / total as f64
    );
    let code = render_move_code(&arch, &schedule);
    println!("first 12 instructions:");
    for line in code.lines().take(12) {
        println!("  {line}");
    }
}
