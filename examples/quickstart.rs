//! Quickstart: build the paper's Figure 9 architecture, schedule a tiny
//! program on it, and look at all three cost axes — area, execution
//! time, and test cost — through the pluggable cost models.
//!
//! Run with: `cargo run --example quickstart`

use ttadse::arch::Architecture;
use ttadse::explore::models::{AnnotatedAreaModel, AnnotatedTimingModel, AreaModel, TimingModel};
use ttadse::explore::testcost::architecture_test_cost;
use ttadse::explore::ComponentDb;
use ttadse::movec::ir::{Dfg, Op};
use ttadse::movec::schedule::Scheduler;

fn main() {
    // 1. The machine: 16-bit, 2 buses, ALU+CMP+LD/ST+PC+IMM, RF1+RF2.
    let arch = Architecture::figure9();
    println!("architecture:\n{arch}");

    // 2. A small program: y = ((a + b) ^ c) compared against a threshold.
    let mut dfg = Dfg::new(16);
    let a = dfg.input();
    let b = dfg.input();
    let c = dfg.input();
    let sum = dfg.op(Op::Add, &[a, b]);
    let x = dfg.op(Op::Xor, &[sum, c]);
    let threshold = dfg.constant(1000);
    let flag = dfg.op(Op::Ltu, &[x, threshold]);
    dfg.mark_output(flag);

    // Golden-model check: the IR interprets like ordinary arithmetic.
    let out = dfg.eval(&[400, 300, 7], &mut [0]);
    assert_eq!(out[0], u64::from(((400 + 300) ^ 7) < 1000));

    // 3. Schedule the data transports.
    let schedule = Scheduler::new(&arch)
        .run(&dfg)
        .expect("figure 9 runs ALU/CMP programs");
    println!(
        "schedule: {} cycles, {} moves, {} spills",
        schedule.cycles,
        schedule.moves.len(),
        schedule.spills
    );

    // 4. The three cost axes of the paper, via the default models over a
    //    shared back-annotation database.
    let db = ComponentDb::new();
    let area = AnnotatedAreaModel::default().area(&arch, &db);
    let clock = AnnotatedTimingModel::default().clock_period(&arch, &db);
    println!("area: {area:.0} gate equivalents");
    println!(
        "execution time: {} cycles x {clock:.1} gate delays = {:.0}",
        schedule.cycles,
        f64::from(schedule.cycles) * clock
    );
    let test = architecture_test_cost(&arch, &db);
    println!("test cost (eq. 14): {:.0} cycles", test.total);
    for c in &test.components {
        let marker = if c.excluded { " (excluded)" } else { "" };
        println!(
            "  {:<6} np={:<4} CD={} ft={:<6.0} fts={:<6.0}{marker}",
            c.name, c.np, c.cd, c.functional_cost, c.fts
        );
    }
}
