//! The Figure 7 extension: applying the functional-test methodology to a
//! bus-oriented VLIW ASIP, where some components are reachable only
//! through others and the test *order* matters.
//!
//! Run with: `cargo run --example vliw_testcost`

use ttadse::arch::vliw::{VliwAccess, VliwTemplate};

fn main() {
    // The paper's Figure 7: instruction cache/register, data cache and n
    // execution units on the bus; the register file's output reaches the
    // bus only through the execution units.
    let template = VliwTemplate::figure7(3);
    println!("-- Figure 7 template --");
    for c in template.components() {
        let access = |a: &VliwAccess| match a {
            VliwAccess::Direct => "direct".to_string(),
            VliwAccess::Through(deps) => format!("through {}", deps.join("+")),
        };
        println!(
            "  {:<10} in: {:<18} out: {}",
            c.name,
            access(&c.input_access),
            access(&c.output_access)
        );
    }
    println!(
        "\ndirectly testable: {}",
        template.directly_testable().join(", ")
    );
    let order = template.test_order().expect("acyclic");
    println!("test order: {}", order.join(" -> "));

    // A pathological template: mutual access dependency = no test order.
    let broken = VliwTemplate::new()
        .component(
            "a",
            VliwAccess::Direct,
            VliwAccess::Through(vec!["b".into()]),
        )
        .component(
            "b",
            VliwAccess::Direct,
            VliwAccess::Through(vec!["a".into()]),
        );
    match broken.test_order() {
        Err(cycle) => println!("\npathological template correctly rejected: {cycle}"),
        Ok(_) => unreachable!("mutual dependency has no order"),
    }
}
